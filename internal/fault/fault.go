package fault

import (
	"fmt"
	"sort"
	"strings"

	"ndpbridge/internal/sim"
)

// Counters tallies the faults the injector actually fired. These are the
// injection-side counts; the recovery-side counts (retries, acks, respawns)
// live with the components that perform the recovery.
type Counters struct {
	Drops      uint64
	Corrupts   uint64
	Duplicates uint64
	Delays     uint64
	Stalls     uint64
	Kills      uint64
	Overflows  uint64
}

// Outcome is the injector's verdict for one message on one hop. Zero value
// means "deliver normally". Duplicate and Corrupt/Drop compose: a duplicated
// message sends two copies, and Corrupt applies to the original copy.
type Outcome struct {
	Drop      bool
	Corrupt   bool
	Duplicate bool
	Delay     sim.Cycles // extra latency in cycles; 0 = none
}

// Faulty reports whether the outcome perturbs delivery at all.
func (o Outcome) Faulty() bool {
	return o.Drop || o.Corrupt || o.Duplicate || o.Delay != 0
}

// activeSpec is one message-fault spec bound to a hop, with its firing
// budget.
type activeSpec struct {
	spec  Spec
	fired uint64
}

// Hop is the per-(scope, rank) decision point for message faults. A nil Hop
// decides "deliver normally" with no RNG draw, so hops without matching
// specs cost one pointer test per message.
type Hop struct {
	specs []*activeSpec
	rng   *sim.RNG
	st    *Counters
}

// Decide draws one verdict for a message crossing the hop at cycle now.
// Each active spec gets exactly one RNG draw per message (whether or not it
// fires), keeping the stream position — and therefore the entire fault
// schedule — a pure function of the message sequence on this hop.
func (h *Hop) Decide(now sim.Cycles) Outcome {
	var o Outcome
	if h == nil {
		return o
	}
	for _, a := range h.specs {
		roll := h.rng.Float64()
		if now < a.spec.After || (a.spec.Until != 0 && now >= a.spec.Until) {
			continue
		}
		if a.spec.Count != 0 && a.fired >= a.spec.Count {
			continue
		}
		if roll >= a.spec.Prob {
			continue
		}
		a.fired++
		switch a.spec.Kind {
		case KindDrop:
			if !o.Drop {
				o.Drop = true
				h.st.Drops++
			}
		case KindCorrupt:
			if !o.Corrupt {
				o.Corrupt = true
				h.st.Corrupts++
			}
		case KindDup:
			if !o.Duplicate {
				o.Duplicate = true
				h.st.Duplicates++
			}
		case KindDelay:
			if o.Delay == 0 {
				d := a.spec.Cycles
				if d == 0 {
					d = 64
				}
				o.Delay = d
				h.st.Delays++
			}
		}
	}
	return o
}

// UnitEvent is one scheduled unit-level fault.
type UnitEvent struct {
	At     sim.Cycles
	Unit   int
	Kill   bool       // false = transient stall
	Cycles sim.Cycles // stall duration (0 for kill)
}

// OverflowEvent is one scheduled bridge-buffer overflow.
type OverflowEvent struct {
	At     sim.Cycles
	Rank   int
	Bytes  uint64
	Cycles sim.Cycles // how long the phantom backlog persists
}

// hopKey addresses one Hop stream.
type hopKey struct {
	scope Scope
	rank  int
}

// Injector is one run's fault engine. It is bound to a single simulation
// (single goroutine, like the sim.Engine) and hands out per-hop decision
// points plus the pre-computed unit/overflow event schedule.
type Injector struct {
	seed  uint64 //ndplint:nosnap recorded in checkpoint meta (FaultSeed); injector is rebuilt from it
	plan  *Plan  //ndplint:nosnap recorded in checkpoint meta (PlanJSON); injector is rebuilt from it
	hops  map[hopKey]*Hop
	st    Counters
	units []UnitEvent     //ndplint:nosnap pure function of (plan, seed), recomputed by New
	ovfl  []OverflowEvent //ndplint:nosnap pure function of (plan, seed), recomputed by New
}

// New builds an injector for plan with the given seed. It returns nil for a
// nil or empty plan: the nil Injector is the "faults off" state, and every
// consumer gates its fault machinery on a non-nil injector so a faultless
// run stays byte-identical to one that never imported this package.
func New(plan *Plan, seed uint64) *Injector {
	if plan.Empty() {
		return nil
	}
	inj := &Injector{seed: seed, plan: plan, hops: make(map[hopKey]*Hop)}
	for _, s := range plan.Faults {
		switch s.Kind {
		case KindStall:
			inj.units = append(inj.units, UnitEvent{At: s.At, Unit: s.Unit, Cycles: s.Cycles})
		case KindKill:
			inj.units = append(inj.units, UnitEvent{At: s.At, Unit: s.Unit, Kill: true})
		case KindOverflow:
			b := s.Bytes
			if b == 0 {
				b = 1 << 20
			}
			inj.ovfl = append(inj.ovfl, OverflowEvent{At: s.At, Rank: s.Rank, Bytes: b, Cycles: s.Cycles})
		}
	}
	// Stable event order: by time, then unit/rank — independent of the
	// plan's textual order for equal times.
	sort.SliceStable(inj.units, func(i, j int) bool {
		if inj.units[i].At != inj.units[j].At {
			return inj.units[i].At < inj.units[j].At
		}
		return inj.units[i].Unit < inj.units[j].Unit
	})
	sort.SliceStable(inj.ovfl, func(i, j int) bool {
		if inj.ovfl[i].At != inj.ovfl[j].At {
			return inj.ovfl[i].At < inj.ovfl[j].At
		}
		return inj.ovfl[i].Rank < inj.ovfl[j].Rank
	})
	return inj
}

// hopSeed derives the RNG seed for a hop stream by stable hashing (FNV-1a)
// of the injector seed, the scope name, and the rank. Construction order of
// the consuming components cannot influence it.
func hopSeed(seed uint64, scope Scope, rank int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(scope); i++ {
		mix(scope[i])
	}
	r := uint64(uint32(rank))
	for i := 0; i < 4; i++ {
		mix(byte(r >> (8 * i)))
	}
	return h
}

// HopFor returns the decision point for (scope, rank), creating it on first
// use, or nil when no spec in the plan matches — callers keep the nil and
// pay only a nil test per message. Nil injectors return nil.
func (inj *Injector) HopFor(scope Scope, rank int) *Hop {
	if inj == nil {
		return nil
	}
	key := hopKey{scope, rank}
	if h, ok := inj.hops[key]; ok {
		return h
	}
	var specs []*activeSpec
	for _, s := range inj.plan.Faults {
		if !messageKind(s.Kind) || s.Scope != scope {
			continue
		}
		if s.Rank != -1 && s.Rank != rank {
			continue
		}
		specs = append(specs, &activeSpec{spec: s})
	}
	var h *Hop
	if len(specs) > 0 {
		h = &Hop{specs: specs, rng: sim.NewRNG(hopSeed(inj.seed, scope, rank)), st: &inj.st}
	}
	inj.hops[key] = h
	return h
}

// UnitEvents returns the scheduled stall/kill events in stable time order.
// Nil injectors return nil.
func (inj *Injector) UnitEvents() []UnitEvent {
	if inj == nil {
		return nil
	}
	return inj.units
}

// OverflowEvents returns the scheduled bridge-overflow events in stable time
// order. Nil injectors return nil.
func (inj *Injector) OverflowEvents() []OverflowEvent {
	if inj == nil {
		return nil
	}
	return inj.ovfl
}

// CountStall and CountKill let the runtime attribute executed unit events.
func (inj *Injector) CountStall() {
	if inj != nil {
		inj.st.Stalls++
	}
}

// CountKill records an executed kill event.
func (inj *Injector) CountKill() {
	if inj != nil {
		inj.st.Kills++
	}
}

// CountOverflow records an executed overflow event.
func (inj *Injector) CountOverflow() {
	if inj != nil {
		inj.st.Overflows++
	}
}

// Counters returns the injection-side tallies (zero value for nil).
func (inj *Injector) Counters() Counters {
	if inj == nil {
		return Counters{}
	}
	return inj.st
}

// String renders the counters compactly for diagnostics.
func (c Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drops=%d corrupts=%d dups=%d delays=%d stalls=%d kills=%d overflows=%d",
		c.Drops, c.Corrupts, c.Duplicates, c.Delays, c.Stalls, c.Kills, c.Overflows)
	return b.String()
}

// Any reports whether any fault fired.
func (c Counters) Any() bool {
	return c.Drops+c.Corrupts+c.Duplicates+c.Delays+c.Stalls+c.Kills+c.Overflows > 0
}
