package fault

import (
	"testing"
)

func TestParseAppliesDefaults(t *testing.T) {
	p, err := Parse([]byte(`{"faults":[{"kind":"drop","scope":"l1-gather","prob":0.1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 1 {
		t.Fatalf("faults = %d", len(p.Faults))
	}
	s := p.Faults[0]
	if s.Rank != -1 || s.Unit != -1 {
		t.Fatalf("absent rank/unit should default to -1, got rank=%d unit=%d", s.Rank, s.Unit)
	}
	// Explicit zero rank survives.
	p2, err := Parse([]byte(`{"faults":[{"kind":"drop","scope":"l1-up","prob":0.5,"rank":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Faults[0].Rank != 0 {
		t.Fatalf("explicit rank 0 lost: %d", p2.Faults[0].Rank)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"faults":[{"kind":"drop","scoep":"l1-up","prob":0.5}]}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
	if _, err := Parse([]byte(`{"faults":[{"scope":"l1-up","prob":0.5}]}`)); err == nil {
		t.Fatal("missing kind accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		json string
		ok   bool
	}{
		{"good drop", `{"faults":[{"kind":"drop","scope":"l1-scatter","prob":0.2}]}`, true},
		{"good kill", `{"faults":[{"kind":"kill","unit":3,"at":100}]}`, true},
		{"good stall", `{"faults":[{"kind":"stall","unit":0,"at":50,"cycles":500}]}`, true},
		{"good overflow", `{"faults":[{"kind":"overflow","rank":1,"at":10,"cycles":100}]}`, true},
		{"bad scope", `{"faults":[{"kind":"drop","scope":"l3-up","prob":0.2}]}`, false},
		{"prob zero", `{"faults":[{"kind":"drop","scope":"l1-up","prob":0}]}`, false},
		{"prob over one", `{"faults":[{"kind":"drop","scope":"l1-up","prob":1.5}]}`, false},
		{"kill unit out of range", `{"faults":[{"kind":"kill","unit":99,"at":100}]}`, false},
		{"kill unit absent", `{"faults":[{"kind":"kill","at":100}]}`, false},
		{"stall without cycles", `{"faults":[{"kind":"stall","unit":1,"at":100}]}`, false},
		{"overflow rank out of range", `{"faults":[{"kind":"overflow","rank":9,"cycles":10}]}`, false},
		{"unknown kind", `{"faults":[{"kind":"melt","unit":1}]}`, false},
		{"until before after", `{"faults":[{"kind":"drop","scope":"l1-up","prob":0.5,"after":100,"until":50}]}`, false},
	}
	for _, c := range cases {
		p, err := Parse([]byte(c.json))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		err = p.Validate(8, 2)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected reject: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: bad plan accepted", c.name)
		}
	}
}

func TestEmptyPlanYieldsNilInjector(t *testing.T) {
	if New(nil, 1) != nil {
		t.Fatal("nil plan should yield nil injector")
	}
	if New(&Plan{}, 1) != nil {
		t.Fatal("empty plan should yield nil injector")
	}
	// The nil injector is fully usable.
	var inj *Injector
	if h := inj.HopFor(ScopeL1Up, 0); h != nil {
		t.Fatal("nil injector handed out a hop")
	}
	if inj.UnitEvents() != nil || inj.OverflowEvents() != nil {
		t.Fatal("nil injector has events")
	}
	var h *Hop
	if o := h.Decide(100); o.Faulty() {
		t.Fatal("nil hop produced a fault")
	}
}

func TestHopDeterminism(t *testing.T) {
	plan, err := Parse([]byte(`{"faults":[
		{"kind":"drop","scope":"l1-gather","prob":0.3},
		{"kind":"corrupt","scope":"l1-gather","prob":0.1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	run := func(order []int) []Outcome {
		inj := New(plan, 42)
		hops := make(map[int]*Hop)
		// Construction order of hops must not matter.
		for _, r := range order {
			hops[r] = inj.HopFor(ScopeL1Gather, r)
		}
		var out []Outcome
		for i := 0; i < 64; i++ {
			out = append(out, hops[i%2].Decide(uint64(i)))
		}
		return out
	}
	a := run([]int{0, 1})
	b := run([]int{1, 0})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across construction orders: %v vs %v", i, a[i], b[i])
		}
	}
	var faulty int
	for _, o := range a {
		if o.Faulty() {
			faulty++
		}
	}
	if faulty == 0 {
		t.Fatal("prob 0.3+0.1 over 64 messages never fired")
	}
}

func TestHopRankFilterAndWindow(t *testing.T) {
	plan, err := Parse([]byte(`{"faults":[
		{"kind":"drop","scope":"l1-up","prob":1.0,"rank":1,"after":100,"until":200}]}`))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(plan, 7)
	if h := inj.HopFor(ScopeL1Up, 0); h != nil {
		t.Fatal("rank filter ignored: rank 0 got a hop")
	}
	if h := inj.HopFor(ScopeL1Scatter, 1); h != nil {
		t.Fatal("scope filter ignored")
	}
	h := inj.HopFor(ScopeL1Up, 1)
	if h == nil {
		t.Fatal("matching hop missing")
	}
	if h.Decide(50).Drop {
		t.Fatal("fired before window")
	}
	if !h.Decide(150).Drop {
		t.Fatal("prob-1.0 fault missed inside window")
	}
	if h.Decide(250).Drop {
		t.Fatal("fired after window")
	}
	if got := inj.Counters().Drops; got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
}

func TestHopCountCap(t *testing.T) {
	plan, err := Parse([]byte(`{"faults":[
		{"kind":"dup","scope":"l2-down","prob":1.0,"count":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(plan, 7)
	h := inj.HopFor(ScopeL2Down, 0)
	var fired int
	for i := 0; i < 10; i++ {
		if h.Decide(uint64(i)).Duplicate {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("count cap: fired %d, want 3", fired)
	}
}

func TestUnitAndOverflowEventsSorted(t *testing.T) {
	plan, err := Parse([]byte(`{"faults":[
		{"kind":"kill","unit":5,"at":300},
		{"kind":"stall","unit":2,"at":100,"cycles":50},
		{"kind":"kill","unit":1,"at":300},
		{"kind":"overflow","rank":0,"at":20,"cycles":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	inj := New(plan, 1)
	evs := inj.UnitEvents()
	if len(evs) != 3 {
		t.Fatalf("unit events = %d", len(evs))
	}
	if evs[0].Unit != 2 || evs[0].Kill || evs[1].Unit != 1 || !evs[1].Kill || evs[2].Unit != 5 {
		t.Fatalf("events out of order: %+v", evs)
	}
	ov := inj.OverflowEvents()
	if len(ov) != 1 || ov[0].Bytes != 1<<20 {
		t.Fatalf("overflow events = %+v (default bytes missing?)", ov)
	}
}
