package fault

import (
	"bytes"
	"testing"

	"ndpbridge/internal/checkpoint"
)

func snapshotPlan() *Plan {
	return &Plan{Faults: []Spec{
		{Kind: KindDrop, Scope: ScopeL1Gather, Rank: -1, Prob: 0.5},
		{Kind: KindCorrupt, Scope: ScopeL1Scatter, Rank: 0, Prob: 0.3, Count: 2},
	}}
}

func TestInjectorSnapshotRoundTrip(t *testing.T) {
	inj := New(snapshotPlan(), 7)
	h0 := inj.HopFor(ScopeL1Gather, 0)
	h1 := inj.HopFor(ScopeL1Gather, 1)
	h2 := inj.HopFor(ScopeL1Scatter, 0)
	// Advance the streams and firing budgets.
	for i := 0; i < 20; i++ {
		h0.Decide(100)
		h1.Decide(100)
		h2.Decide(100)
	}

	var e checkpoint.Enc
	inj.SnapshotTo(&e)

	// A freshly built injector with the same plan repositioned from the
	// snapshot must produce the identical future fault schedule.
	inj2 := New(snapshotPlan(), 7)
	g0 := inj2.HopFor(ScopeL1Gather, 0)
	g1 := inj2.HopFor(ScopeL1Gather, 1)
	g2 := inj2.HopFor(ScopeL1Scatter, 0)
	if err := inj2.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatal(err)
	}
	if inj2.Counters() != inj.Counters() {
		t.Errorf("counters %+v, want %+v", inj2.Counters(), inj.Counters())
	}
	for i := 0; i < 50; i++ {
		if h0.Decide(200) != g0.Decide(200) || h1.Decide(200) != g1.Decide(200) || h2.Decide(200) != g2.Decide(200) {
			t.Fatalf("fault schedule diverged at decision %d after restore", i)
		}
	}

	// Deterministic encoding across calls (hops live in a map).
	var a, b checkpoint.Enc
	inj.SnapshotTo(&a)
	inj.SnapshotTo(&b)
	if !bytes.Equal(a.Data(), b.Data()) {
		t.Fatal("injector snapshot is not deterministic")
	}
}

func TestInjectorSnapshotNil(t *testing.T) {
	var inj *Injector
	var e checkpoint.Enc
	inj.SnapshotTo(&e)
	var inj2 *Injector
	if err := inj2.RestoreFrom(checkpoint.NewDec(e.Data())); err != nil {
		t.Fatalf("nil round trip: %v", err)
	}

	// A snapshot with hops cannot restore into a faultless run.
	live := New(snapshotPlan(), 7)
	live.HopFor(ScopeL1Gather, 0)
	var e2 checkpoint.Enc
	live.SnapshotTo(&e2)
	var none *Injector
	if err := none.RestoreFrom(checkpoint.NewDec(e2.Data())); err == nil {
		t.Fatal("hop-bearing snapshot restored into nil injector")
	}
}

func TestInjectorSnapshotHopMismatch(t *testing.T) {
	inj := New(snapshotPlan(), 7)
	inj.HopFor(ScopeL1Gather, 3)
	var e checkpoint.Enc
	inj.SnapshotTo(&e)

	other := New(snapshotPlan(), 7) // same plan but hop never created
	if err := other.RestoreFrom(checkpoint.NewDec(e.Data())); err == nil {
		t.Fatal("unknown hop not rejected")
	}
}
