package fault

import (
	"fmt"
	"sort"

	"ndpbridge/internal/checkpoint"
)

// This file is the fault engine's serialization boundary: the injector's
// position — per-hop RNG stream states, per-spec firing budgets, and the
// executed-fault counters. The unit/overflow event schedule is a pure
// function of the plan and needs no state; hops are encoded in sorted
// (scope, rank) order so the byte stream is independent of map iteration.

// SnapshotTo encodes the injector's mutable position. Safe on a nil
// injector (encodes an empty hop list), matching the nil-is-off convention.
func (inj *Injector) SnapshotTo(e *checkpoint.Enc) {
	if inj == nil {
		e.U32(0)
		var z Counters
		encodeCounters(e, z)
		return
	}
	keys := make([]hopKey, 0, len(inj.hops))
	for k, h := range inj.hops {
		if h != nil { // nil hops carry no state
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].scope != keys[j].scope {
			return keys[i].scope < keys[j].scope
		}
		return keys[i].rank < keys[j].rank
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		h := inj.hops[k]
		e.Str(string(k.scope))
		e.I64(int64(k.rank))
		e.U64(h.rng.State())
		e.U32(uint32(len(h.specs)))
		for _, a := range h.specs {
			e.U64(a.fired)
		}
	}
	encodeCounters(e, inj.st)
}

// RestoreFrom repositions the injector from a SnapshotTo stream. The hops
// must already exist (the consumers create them during system construction,
// which is deterministic), and their spec counts must match.
func (inj *Injector) RestoreFrom(d *checkpoint.Dec) error {
	n := d.U32()
	if inj == nil {
		if d.Err() == nil && n != 0 {
			return fmt.Errorf("fault: snapshot has %d hops but no injector is attached", n)
		}
		decodeCounters(d)
		return d.Err()
	}
	for i := uint32(0); i < n; i++ {
		scope := Scope(d.Str())
		rank := int(d.I64())
		state := d.U64()
		specs := d.U32()
		if d.Err() != nil {
			return d.Err()
		}
		h := inj.hops[hopKey{scope, rank}]
		if h == nil {
			return fmt.Errorf("fault: snapshot hop (%s, %d) does not exist in this injector", scope, rank)
		}
		if int(specs) != len(h.specs) {
			return fmt.Errorf("fault: snapshot hop (%s, %d) has %d specs, injector has %d", scope, rank, specs, len(h.specs))
		}
		h.rng.SetState(state)
		for _, a := range h.specs {
			a.fired = d.U64()
		}
	}
	inj.st = decodeCounters(d)
	return d.Err()
}

func encodeCounters(e *checkpoint.Enc, c Counters) {
	e.U64(c.Drops)
	e.U64(c.Corrupts)
	e.U64(c.Duplicates)
	e.U64(c.Delays)
	e.U64(c.Stalls)
	e.U64(c.Kills)
	e.U64(c.Overflows)
}

func decodeCounters(d *checkpoint.Dec) Counters {
	return Counters{
		Drops:      d.U64(),
		Corrupts:   d.U64(),
		Duplicates: d.U64(),
		Delays:     d.U64(),
		Stalls:     d.U64(),
		Kills:      d.U64(),
		Overflows:  d.U64(),
	}
}
