// Package energy converts raw simulation counters into the Figure 13 energy
// breakdown: NDP cores and SRAM, local DRAM accesses, DRAM and channel
// accesses for cross-unit communication, and static energy.
package energy

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/stats"
)

// Counters are the raw inputs gathered after a run.
type Counters struct {
	// BusyCycles is the summed busy cycles across all cores.
	BusyCycles uint64
	// Makespan is the end-to-end time in cycles.
	Makespan uint64
	// Units is the number of NDP units powered.
	Units int
	// LocalDRAMPJ is bank access energy for local computation (pJ).
	LocalDRAMPJ float64
	// CommDRAMPJ is bank access energy serving communication (pJ).
	CommDRAMPJ float64
	// ChannelBytes is the total bytes moved on off-chip channels and rank
	// buses for communication.
	ChannelBytes uint64
	// SRAMAccesses approximates cache/metadata/sketch accesses.
	SRAMAccesses uint64
}

const (
	cyclesPerSecond = 400e6 // 400 MHz NDP core clock
	pjPerMJ         = 1e9
	mwSeconds2mJ    = 1.0 // 1 mW × 1 s = 1 mJ
)

// Breakdown computes the energy split in millijoules.
func Breakdown(c Counters, e config.Energy) stats.Energy {
	busySeconds := float64(c.BusyCycles) / cyclesPerSecond
	wallSeconds := float64(c.Makespan) / cyclesPerSecond

	coreMJ := busySeconds * e.CorePowerMW * mwSeconds2mJ
	sramMJ := float64(c.SRAMAccesses) * e.SRAMAccessPJ / pjPerMJ
	localMJ := c.LocalDRAMPJ / pjPerMJ
	commMJ := c.CommDRAMPJ/pjPerMJ + float64(c.ChannelBytes)*e.ChannelPJPerByte/pjPerMJ
	staticMJ := wallSeconds * e.StaticMWPerUnit * float64(c.Units) * mwSeconds2mJ

	return stats.Energy{
		CoreSRAM:  coreMJ + sramMJ,
		LocalDRAM: localMJ,
		CommDRAM:  commMJ,
		Static:    staticMJ,
	}
}
