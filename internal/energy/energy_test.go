package energy

import (
	"math"
	"testing"

	"ndpbridge/internal/config"
)

func TestBreakdownComponents(t *testing.T) {
	e := config.Default().Energy
	c := Counters{
		BusyCycles:   400e6, // 1 core-second of busy time
		Makespan:     400e6, // 1 second wall
		Units:        512,
		LocalDRAMPJ:  2e9, // 2 mJ
		CommDRAMPJ:   1e9, // 1 mJ
		ChannelBytes: 50e6,
		SRAMAccesses: 2e8,
	}
	b := Breakdown(c, e)
	// Core: 1 s × 10 mW = 10 mJ; SRAM: 2e8 × 5 pJ = 1 mJ.
	if math.Abs(b.CoreSRAM-11) > 1e-9 {
		t.Errorf("CoreSRAM = %v, want 11", b.CoreSRAM)
	}
	if math.Abs(b.LocalDRAM-2) > 1e-9 {
		t.Errorf("LocalDRAM = %v, want 2", b.LocalDRAM)
	}
	// Comm: 1 mJ + 50e6 B × 20 pJ/B = 1 + 1 = 2 mJ.
	if math.Abs(b.CommDRAM-2) > 1e-9 {
		t.Errorf("CommDRAM = %v, want 2", b.CommDRAM)
	}
	// Static: 1 s × 2 mW × 512 = 1024 mJ.
	if math.Abs(b.Static-1024) > 1e-9 {
		t.Errorf("Static = %v, want 1024", b.Static)
	}
}

func TestBreakdownZero(t *testing.T) {
	b := Breakdown(Counters{}, config.Default().Energy)
	if b.Total() != 0 {
		t.Errorf("zero counters should give zero energy, got %v", b.Total())
	}
}

func TestBreakdownScalesWithTime(t *testing.T) {
	e := config.Default().Energy
	a := Breakdown(Counters{Makespan: 1000, Units: 10}, e)
	b := Breakdown(Counters{Makespan: 2000, Units: 10}, e)
	if math.Abs(b.Static-2*a.Static) > 1e-12 {
		t.Errorf("static energy must scale linearly with makespan: %v vs %v", a.Static, b.Static)
	}
}
