// Critical-path extraction. The span graph recorded under EnableFlows is a
// forest: every span points at the span that caused it. Per epoch, the walk
// below finds the last span to finish inside the epoch (the thing the barrier
// was actually waiting for), follows its parent chain backwards, and bills
// every cycle of the epoch to exactly one attribution category — span time to
// the span's category, causal gaps and uncovered prefix to slack. Because the
// walk moves a single cursor monotonically from the epoch's end to its start
// and each step bills precisely the cycles the cursor moved, the categories
// sum to the epoch length by construction (property-tested).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// CatCycles is a per-category cycle attribution. Fields mirror the Category
// enum; JSON names are the machine-readable report schema.
type CatCycles struct {
	BankBusy    uint64 `json:"bank_busy"`
	TaskQueue   uint64 `json:"task_queue"`
	GatherBatch uint64 `json:"gather_batch"`
	BridgeQueue uint64 `json:"bridge_queue"`
	LBMigration uint64 `json:"lb_migration"`
	Retry       uint64 `json:"retry_backoff"`
	HostRT      uint64 `json:"host_roundtrip"`
	Slack       uint64 `json:"slack"`
}

// add bills n cycles to cat.
func (c *CatCycles) add(cat Category, n uint64) {
	switch cat {
	case CatBankBusy:
		c.BankBusy += n
	case CatTaskQueue:
		c.TaskQueue += n
	case CatGatherBatch:
		c.GatherBatch += n
	case CatBridgeQueue:
		c.BridgeQueue += n
	case CatLBMigration:
		c.LBMigration += n
	case CatRetry:
		c.Retry += n
	case CatHostRT:
		c.HostRT += n
	default:
		c.Slack += n
	}
}

// Get returns the cycles billed to cat.
func (c CatCycles) Get(cat Category) uint64 {
	switch cat {
	case CatBankBusy:
		return c.BankBusy
	case CatTaskQueue:
		return c.TaskQueue
	case CatGatherBatch:
		return c.GatherBatch
	case CatBridgeQueue:
		return c.BridgeQueue
	case CatLBMigration:
		return c.LBMigration
	case CatRetry:
		return c.Retry
	case CatHostRT:
		return c.HostRT
	default:
		return c.Slack
	}
}

// Total sums all categories.
func (c CatCycles) Total() uint64 {
	var t uint64
	for cat := Category(0); cat < nCategories; cat++ {
		t += c.Get(cat)
	}
	return t
}

// Accum adds o into c.
func (c *CatCycles) Accum(o CatCycles) {
	for cat := Category(0); cat < nCategories; cat++ {
		c.add(cat, o.Get(cat))
	}
}

// Dominant returns the category with the most cycles and its share of the
// total. Ties break toward the lower-numbered category, so the result is
// deterministic.
func (c CatCycles) Dominant() (Category, float64) {
	best, bestN := CatSlack, uint64(0)
	for cat := Category(0); cat < nCategories; cat++ {
		if n := c.Get(cat); n > bestN {
			best, bestN = cat, n
		}
	}
	total := c.Total()
	if total == 0 {
		return best, 0
	}
	return best, float64(bestN) / float64(total)
}

// EpochPath is the attribution of one epoch's wall-clock.
type EpochPath struct {
	Epoch uint32 `json:"epoch"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// PathSpans is the number of spans on the extracted critical path.
	PathSpans int       `json:"path_spans"`
	Attr      CatCycles `json:"attribution"`
}

// CritReport is the full critical-path analysis of one run.
type CritReport struct {
	Makespan     uint64      `json:"makespan"`
	SpanCount    int         `json:"spans"`
	DroppedSpans uint64      `json:"dropped_spans"`
	Epochs       []EpochPath `json:"epochs"`
	Total        CatCycles   `json:"total"`
}

// CritPath extracts the per-epoch critical path from the recorded spans and
// attributes the run's makespan to exclusive categories. Returns nil when
// flow recording was never enabled.
func (r *Recorder) CritPath(makespan uint64) *CritReport {
	if r == nil || !r.flows {
		return nil
	}
	rep := &CritReport{
		Makespan:     makespan,
		SpanCount:    len(r.spans),
		DroppedSpans: r.spanDrops,
	}
	// Epoch boundaries: each mark starts an epoch; the last epoch ends at
	// the makespan. No marks (flows enabled on a system without barriers)
	// degenerates to one epoch covering the whole run.
	marks := append([]EpochMark(nil), r.epochs...)
	// The barrier fires marks in time order, but sort defensively: the
	// sums-to-makespan invariant must hold for any input, not just
	// well-behaved recordings.
	sort.SliceStable(marks, func(i, j int) bool { return marks[i].At < marks[j].At })
	starts := make([]uint64, 0, len(marks)+1)
	nums := make([]uint32, 0, len(marks)+1)
	for _, em := range marks {
		if em.At >= makespan {
			break // barrier at (or past) the end bounds no residual epoch
		}
		starts = append(starts, em.At)
		nums = append(nums, em.N)
	}
	if len(starts) == 0 {
		starts = append(starts, 0)
		nums = append(nums, 0)
	}
	// Last span to finish per epoch. A span belongs to the epoch its End
	// falls in, with barrier-coincident ends ((s_i, s_i+1]-style) billed to
	// the epoch they conclude. Ties on End resolve to the later-recorded
	// span — a deterministic choice at any worker count, since recording
	// order is the (deterministic) event order of the single-threaded run.
	last := make([]int, len(starts)) // index into r.spans, -1 = none
	for i := range last {
		last[i] = -1
	}
	for i, sp := range r.spans {
		if sp.End > makespan {
			continue
		}
		e := sort.Search(len(starts), func(j int) bool { return starts[j] >= sp.End }) - 1
		if sp.Start == sp.End {
			// A zero-length span sitting exactly on a barrier (e.g. a task
			// seeded and popped at the epoch boundary) belongs to the epoch
			// it opens, not the one it concludes — otherwise it would win
			// the last-to-finish tie there and truncate the walk with an
			// empty parent chain.
			e = sort.Search(len(starts), func(j int) bool { return starts[j] > sp.End }) - 1
		}
		if e < 0 {
			e = 0
		}
		if last[e] < 0 || sp.End >= r.spans[last[e]].End {
			last[e] = i
		}
	}
	for e := range starts {
		lo := starts[e]
		hi := makespan
		if e+1 < len(starts) {
			hi = starts[e+1]
		}
		ep := EpochPath{Epoch: nums[e], Start: lo, End: hi}
		cur := hi
		idx := last[e]
		for idx >= 0 && cur > lo {
			sp := r.spans[idx]
			// Causal gap between this span's end and the cursor: time the
			// epoch spent that no parent-chain span explains. Clamped to the
			// epoch floor — chains crossing the barrier into the previous
			// epoch must not bill cycles outside this one.
			if sp.End < cur {
				gapTo := sp.End
				if gapTo < lo {
					gapTo = lo
				}
				ep.Attr.add(CatSlack, cur-gapTo)
				cur = gapTo
			}
			s := sp.Start
			if s < lo {
				s = lo
			}
			if s < cur {
				ep.Attr.add(sp.Cat, cur-s)
				cur = s
				ep.PathSpans++
			}
			if sp.Parent == 0 {
				break
			}
			idx = int(sp.Parent) - 1
		}
		if cur > lo {
			ep.Attr.add(CatSlack, cur-lo)
		}
		rep.Epochs = append(rep.Epochs, ep)
		rep.Total.Accum(ep.Attr)
	}
	return rep
}

// Dominant returns the run-level dominant category name and its share.
func (rep *CritReport) Dominant() (string, float64) {
	cat, frac := rep.Total.Dominant()
	return cat.String(), frac
}

// Render formats the report as a human-readable table: one row per epoch
// with the full category percentage breakdown, plus a totals row.
func (rep *CritReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path attribution (makespan %d cycles, %d spans", rep.Makespan, rep.SpanCount)
	if rep.DroppedSpans > 0 {
		fmt.Fprintf(&b, ", %d dropped", rep.DroppedSpans)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "%-7s %12s %6s", "epoch", "cycles", "path")
	for cat := Category(0); cat < nCategories; cat++ {
		fmt.Fprintf(&b, " %14s", cat)
	}
	b.WriteString("\n")
	row := func(label string, cycles uint64, pathSpans int, attr CatCycles) {
		fmt.Fprintf(&b, "%-7s %12d", label, cycles)
		if pathSpans >= 0 {
			fmt.Fprintf(&b, " %6d", pathSpans)
		} else {
			fmt.Fprintf(&b, " %6s", "-")
		}
		for cat := Category(0); cat < nCategories; cat++ {
			pct := 0.0
			if cycles > 0 {
				pct = 100 * float64(attr.Get(cat)) / float64(cycles)
			}
			fmt.Fprintf(&b, " %13.1f%%", pct)
		}
		b.WriteString("\n")
	}
	for _, ep := range rep.Epochs {
		row(fmt.Sprintf("%d", ep.Epoch), ep.End-ep.Start, ep.PathSpans, ep.Attr)
	}
	row("total", rep.Total.Total(), -1, rep.Total)
	cat, frac := rep.Dominant()
	fmt.Fprintf(&b, "dominant bottleneck: %s (%.1f%%)\n", cat, 100*frac)
	return b.String()
}
