// Causal flow spans. Beyond flat activity intervals, the recorder can track
// *flows*: causal chains that follow a root task (or a migrated data block)
// through every hop of the unit → L1 bridge → L2 bridge → host path. Each hop
// is a Span carrying the flow ID, a link to its parent span, a kind (what the
// flow was doing) and a category (who gets billed for the time). Spans feed
// the Perfetto flow-arrow export (FlowTrace) and the critical-path analysis
// (CritPath). Span recording is off by default — EnableFlows switches it on —
// and every method is a no-op on a nil or flow-disabled recorder, so hot call
// sites stay allocation-free when tracing is off.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ndpbridge/internal/metrics"
)

// SpanKind says what the flow was doing during the span.
type SpanKind uint8

const (
	// SpanQueued is time a task spent in a unit's (or host core's) ready
	// queue between enqueue and execution start.
	SpanQueued SpanKind = iota
	// SpanExec is one task execution.
	SpanExec
	// SpanMailbox is time a staged message waited in a unit mailbox before
	// a bridge or the host drained it.
	SpanMailbox
	// SpanBridgeQ is time spent in a bridge buffer (scatter queue, upMail).
	SpanBridgeQ
	// SpanDeliver is the final in-flight leg ending at a destination commit.
	SpanDeliver
	// SpanBlocked is a backpressure refusal: a drain was skipped because the
	// retransmit window was full (blocked on credit).
	SpanBlocked
	// SpanRetx is a retransmission wait: the round-trip that timed out (or
	// was nacked) before the link layer resent the message.
	SpanRetx
	nSpanKinds
)

var spanKindNames = [nSpanKinds]string{
	"queued", "exec", "mailbox", "bridgeq", "deliver", "blocked", "retx",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("SpanKind(%d)", uint8(k))
}

// Category is the exclusive makespan-attribution bucket a span bills to.
// The critical-path walk charges every cycle of an epoch to exactly one
// category, so the categories must partition "where did the time go".
type Category uint8

const (
	// CatBankBusy: an NDP core (or host core) was executing a task.
	CatBankBusy Category = iota
	// CatTaskQueue: a ready task waited behind others in a unit queue.
	CatTaskQueue
	// CatGatherBatch: a message waited for a bridge gather/scatter round to
	// pick it up (batching delay).
	CatGatherBatch
	// CatBridgeQueue: a message waited in a bridge buffer.
	CatBridgeQueue
	// CatLBMigration: a load-balancing command or migrated data block was in
	// flight.
	CatLBMigration
	// CatRetry: retransmission round-trips and credit stalls.
	CatRetry
	// CatHostRT: host / level-2 channel round-trips (polling, forwarding,
	// cross-rank batches).
	CatHostRT
	// CatSlack is residual time no recorded span explains (barrier kicks,
	// untracked gaps). The attribution walk never leaves cycles unbilled, so
	// honest slack is reported rather than silently absorbed.
	CatSlack
	nCategories
)

// NumCategories is the number of attribution categories (including slack).
const NumCategories = int(nCategories)

var categoryNames = [nCategories]string{
	"bank-busy", "task-queue", "gather-batch", "bridge-queue",
	"lb-migration", "retry-backoff", "host-roundtrip", "slack",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Span is one causally-linked interval of a flow. Parent is the 1-based ID
// of the span that caused this one (0 = root): parents are always recorded
// before children, so Parent < this span's own ID and parent walks terminate.
type Span struct {
	Flow   uint64
	Start  uint64
	End    uint64
	Parent uint32
	Actor  int32
	Kind   SpanKind
	Cat    Category
}

// EpochMark records a bulk-synchronization barrier: epoch N began at At.
type EpochMark struct {
	N  uint32
	At uint64
}

// EnableFlows switches on causal span recording with the given span capacity
// (0 = default 2M). Spans past the cap are counted as dropped, bounding
// memory on long runs.
func (r *Recorder) EnableFlows(capacity int) {
	if r == nil {
		return
	}
	if capacity <= 0 {
		capacity = 2_000_000
	}
	r.flows = true
	r.spanCap = capacity
}

// FlowsEnabled reports whether causal span recording is on. Call sites use
// it to skip per-message instrumentation loops entirely when flows are off.
func (r *Recorder) FlowsEnabled() bool { return r != nil && r.flows }

// NewFlow issues a fresh flow ID for roots that are not tasks (migrated
// blocks, LB commands). The high bit keeps these IDs disjoint from task IDs,
// which seed task flows directly.
func (r *Recorder) NewFlow() uint64 {
	if r == nil || !r.flows {
		return 0
	}
	r.nextFlow++
	return r.nextFlow | 1<<63
}

// Span records one closed causal span and returns its 1-based ID (0 when
// disabled or dropped — a valid Parent for subsequent spans either way).
// End < Start is clamped to a zero-length span at End.
func (r *Recorder) Span(flow uint64, parent uint32, k SpanKind, cat Category, actor int, start, end uint64) uint32 {
	if r == nil || !r.flows {
		return 0
	}
	if len(r.spans) >= r.spanCap {
		r.spanDrops++
		return 0
	}
	if end < start {
		start = end
	}
	r.catHist[cat].Observe(end - start)
	r.spans = append(r.spans, Span{
		Flow: flow, Start: start, End: end,
		Parent: parent, Actor: int32(actor), Kind: k, Cat: cat,
	})
	return uint32(len(r.spans))
}

// OpenSpan records a span whose end is not yet known (End == Start until
// CloseSpan). Children spawned mid-span can already reference the returned
// ID as their parent.
func (r *Recorder) OpenSpan(flow uint64, parent uint32, k SpanKind, cat Category, actor int, start uint64) uint32 {
	if r == nil || !r.flows {
		return 0
	}
	if len(r.spans) >= r.spanCap {
		r.spanDrops++
		return 0
	}
	r.spans = append(r.spans, Span{
		Flow: flow, Start: start, End: start,
		Parent: parent, Actor: int32(actor), Kind: k, Cat: cat,
	})
	return uint32(len(r.spans))
}

// TaskOrigin resolves the flow and queue-entry cycle of a task about to
// execute from its causal parent span. Tasks carry only the parent span ID
// (one uint32 — keeping the Task struct a single cache line); the flow is
// read back from the parent record, which is always closed by pickup time:
// exec spans close synchronously with the spawning handler, hop spans close
// at record time. A parentless task is a flow root keyed by its own ID.
// Exec-span parents mean a locally-spawned child, whose queue wait began at
// its spawn cycle; any other parent is a delivery hop, whose End is the
// moment the task entered this queue.
func (r *Recorder) TaskOrigin(span uint32, id, spawnedAt uint64) (flow, enq uint64) {
	if r == nil || !r.flows || span == 0 || int(span) > len(r.spans) {
		return id, spawnedAt
	}
	sp := r.spans[span-1]
	if sp.Kind == SpanExec {
		return sp.Flow, spawnedAt
	}
	return sp.Flow, sp.End
}

// CloseSpan sets the end of a span opened with OpenSpan and bills its
// duration to the span's category histogram.
func (r *Recorder) CloseSpan(id uint32, end uint64) {
	if r == nil || id == 0 || int(id) > len(r.spans) {
		return
	}
	sp := &r.spans[id-1]
	if end < sp.Start {
		end = sp.Start
	}
	sp.End = end
	r.catHist[sp.Cat].Observe(end - sp.Start)
}

// EpochMark records that epoch n began at cycle at. Marks arrive in time
// order (the barrier fires them) and bound the per-epoch attribution.
func (r *Recorder) EpochMark(n uint32, at uint64) {
	if r == nil || !r.flows {
		return
	}
	r.epochs = append(r.epochs, EpochMark{N: n, At: at})
}

// Spans returns the retained spans (do not modify).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// SpanCount returns the number of retained spans.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// DroppedSpans returns how many spans exceeded the span capacity.
func (r *Recorder) DroppedSpans() uint64 {
	if r == nil {
		return 0
	}
	return r.spanDrops
}

// Epochs returns the recorded epoch marks (do not modify).
func (r *Recorder) Epochs() []EpochMark {
	if r == nil {
		return nil
	}
	return r.epochs
}

// BindMetrics attaches one wait-time histogram per attribution category
// (wait_<category>_cycles) so span durations also feed the instrument
// registry. Nil-safe on both sides.
func (r *Recorder) BindMetrics(reg *metrics.Registry) {
	if r == nil {
		return
	}
	for c := 0; c < NumCategories; c++ {
		name := "wait_" + strings.ReplaceAll(categoryNames[c], "-", "_") + "_cycles"
		r.catHist[c] = reg.Histogram(name)
	}
}

// FlowTrace writes a Chrome/Perfetto trace JSON array holding the interval
// events, the causal spans, and one flow arrow ("s"/"f" event pair) per
// parent→child span edge, so Perfetto renders the unit→bridge→host chains
// as connected arrows. The leading metadata record carries retained/dropped
// counts for both events and spans. A nil recorder writes a valid trace
// holding only that record.
func (r *Recorder) FlowTrace(w io.Writer) error {
	capacity, spanCap := 0, 0
	if r != nil {
		capacity, spanCap = r.cap, r.spanCap
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		`[`+"\n"+`  {"name":"ndpbridge_trace_info","ph":"M","pid":0,"tid":0,"args":{"retained":%d,"dropped":%d,"capacity":%d,"spans":%d,"spans_dropped":%d,"span_capacity":%d}}`,
		r.Len(), r.Dropped(), capacity, r.SpanCount(), r.DroppedSpans(), spanCap); err != nil {
		return err
	}
	if err := r.writeEventBody(bw); err != nil {
		return err
	}
	spans := r.Spans()
	for i, sp := range spans {
		dur := sp.End - sp.Start
		if dur == 0 {
			dur = 1
		}
		if _, err := fmt.Fprintf(bw,
			",\n"+`  {"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"flow":%d,"span":%d,"parent":%d}}`,
			sp.Kind, sp.Cat, sp.Start, dur, sp.Actor+1, sp.Flow, i+1, sp.Parent); err != nil {
			return err
		}
	}
	// Flow arrows: the "s" (start) event sits on the parent span's lane at
	// the causal handoff instant, the "f" (finish, bp:"e") event on the
	// child's lane at the child's start. The arrow ID is the child span's ID,
	// unique per edge since each span has exactly one parent.
	for i, sp := range spans {
		if sp.Parent == 0 {
			continue
		}
		parent := spans[sp.Parent-1]
		handoff := parent.End
		if handoff > sp.Start {
			handoff = sp.Start
		}
		if handoff < parent.Start {
			handoff = parent.Start
		}
		if _, err := fmt.Fprintf(bw,
			",\n"+`  {"name":"flow","cat":"flow","ph":"s","id":%d,"ts":%d,"pid":0,"tid":%d}`+
				",\n"+`  {"name":"flow","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%d,"pid":0,"tid":%d}`,
			i+1, handoff, parent.Actor+1, i+1, sp.Start, sp.Actor+1); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
