package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindTask, 0, 0, 10, "x") // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Error("nil recorder must be inert")
	}
	if a, u := r.Utilization(100, 10); a != nil || u != nil {
		t.Error("nil recorder utilization must be empty")
	}
}

func TestRecordAndCap(t *testing.T) {
	r := New(3)
	for i := 0; i < 5; i++ {
		r.Record(KindTask, 1, uint64(i), uint64(i+1), "")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3 (capped)", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
}

func TestRecordClampsReversedInterval(t *testing.T) {
	r := New(0)
	r.Record(KindGather, 0, 50, 10, "")
	e := r.Events()[0]
	if e.End < e.Start {
		t.Error("reversed interval not clamped")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := New(0)
	r.Record(KindTask, 0, 0, 100, "taskA")
	r.Record(KindDeliver, 1, 50, 60, "")
	r.Record(KindEpoch, -1, 100, 100, "barrier")
	var b strings.Builder
	if err := r.ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(parsed) != 4 { // metadata record + 3 events
		t.Fatalf("parsed %d records", len(parsed))
	}
	if parsed[0]["name"] != "ndpbridge_trace_info" {
		t.Errorf("first record is not metadata: %v", parsed[0])
	}
	args := parsed[0]["args"].(map[string]any)
	if args["retained"].(float64) != 3 || args["dropped"].(float64) != 0 {
		t.Errorf("metadata args wrong: %v", args)
	}
	if parsed[1]["name"] != "taskA" || parsed[2]["name"] != "deliver" {
		t.Errorf("names wrong: %v", parsed)
	}
	// Zero-duration events get dur=1 so viewers render them.
	if parsed[3]["dur"].(float64) != 1 {
		t.Errorf("zero-duration event dur = %v", parsed[3]["dur"])
	}
}

func TestChromeTraceReportsDrops(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(KindTask, 0, uint64(i), uint64(i+1), "")
	}
	var b strings.Builder
	if err := r.ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	args := parsed[0]["args"].(map[string]any)
	if args["retained"].(float64) != 2 || args["dropped"].(float64) != 3 || args["capacity"].(float64) != 2 {
		t.Errorf("metadata args = %v, want retained 2, dropped 3, capacity 2", args)
	}
}

func TestChromeTraceNilRecorder(t *testing.T) {
	var r *Recorder
	var b strings.Builder
	if err := r.ChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON from nil recorder: %v\n%s", err, b.String())
	}
	if len(parsed) != 1 || parsed[0]["name"] != "ndpbridge_trace_info" {
		t.Errorf("nil recorder trace = %v, want only the metadata record", parsed)
	}
}

func TestUtilization(t *testing.T) {
	r := New(0)
	// Actor 0 busy for the first half; actor 1 fully busy.
	r.Record(KindTask, 0, 0, 50, "")
	r.Record(KindTask, 1, 0, 100, "")
	r.Record(KindGather, 2, 0, 100, "") // non-task: ignored
	actors, util := r.Utilization(100, 4)
	if len(actors) != 2 || actors[0] != 0 || actors[1] != 1 {
		t.Fatalf("actors = %v", actors)
	}
	want0 := []float64{1, 1, 0, 0}
	for i, w := range want0 {
		if diff := util[0][i] - w; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("actor 0 bucket %d = %v, want %v", i, util[0][i], w)
		}
	}
	for i := range util[1] {
		if util[1][i] < 0.999 {
			t.Errorf("actor 1 bucket %d = %v, want 1", i, util[1][i])
		}
	}
}

func TestUtilizationSpansBuckets(t *testing.T) {
	r := New(0)
	r.Record(KindTask, 0, 25, 75, "") // half of bucket 0, all of 1... with 2 buckets of 50
	_, util := r.Utilization(100, 2)
	if util[0][0] != 0.5 || util[0][1] != 0.5 {
		t.Errorf("split wrong: %v", util[0])
	}
}

func TestUtilizationZeroLengthEvent(t *testing.T) {
	r := New(0)
	r.Record(KindTask, 0, 50, 50, "") // zero-length: contributes nothing
	r.Record(KindTask, 0, 0, 25, "")
	actors, util := r.Utilization(100, 4)
	if len(actors) != 1 {
		t.Fatalf("actors = %v", actors)
	}
	want := []float64{1, 0, 0, 0}
	for i, w := range want {
		if diff := util[0][i] - w; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, util[0][i], w)
		}
	}
}

func TestUtilizationFullMakespan(t *testing.T) {
	r := New(0)
	r.Record(KindTask, 7, 0, 1000, "")
	actors, util := r.Utilization(1000, 7) // width not a divisor of makespan
	if len(actors) != 1 || actors[0] != 7 {
		t.Fatalf("actors = %v", actors)
	}
	for i, u := range util[0] {
		if u < 1-1e-9 || u > 1+1e-9 {
			t.Errorf("bucket %d = %v, want 1", i, u)
		}
	}
}

func TestUtilizationBucketBoundary(t *testing.T) {
	r := New(0)
	// Event exactly on a bucket boundary: must land fully in bucket 1,
	// leaving buckets 0 and 2 untouched.
	r.Record(KindTask, 0, 25, 50, "")
	_, util := r.Utilization(100, 4)
	want := []float64{0, 1, 0, 0}
	for i, w := range want {
		if diff := util[0][i] - w; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("bucket %d = %v, want %v", i, util[0][i], w)
		}
	}
}

func TestSummarize(t *testing.T) {
	r := New(0)
	r.Record(KindTask, 0, 0, 10, "")
	r.Record(KindTask, 1, 0, 20, "")
	r.Record(KindLB, -1, 5, 5, "")
	s := r.Summarize()
	if s.Count[KindTask] != 2 || s.Busy[KindTask] != 30 {
		t.Errorf("task summary = %d/%d", s.Count[KindTask], s.Busy[KindTask])
	}
	if s.Count[KindLB] != 1 {
		t.Errorf("lb count = %d", s.Count[KindLB])
	}
}

func TestHeatmap(t *testing.T) {
	r := New(0)
	r.Record(KindTask, 3, 0, 100, "")
	hm := r.Heatmap(100, 8)
	if !strings.Contains(hm, "3 |") || !strings.Contains(hm, "@") {
		t.Errorf("heatmap:\n%s", hm)
	}
}

func TestKindString(t *testing.T) {
	if KindTask.String() != "task" || KindEpoch.String() != "epoch" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(250).String(), "250") {
		t.Error("unknown kind should show its number")
	}
}
