// Package trace records simulation activity — task executions, message
// deliveries, communication rounds, and load-balancing decisions — and
// renders it as a Chrome trace (chrome://tracing / Perfetto JSON), as
// per-unit utilization timelines, and as activity summaries. Tracing is
// optional: a nil *Recorder is safe to pass everywhere and costs one branch.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"ndpbridge/internal/metrics"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindTask is one task execution on an NDP unit or host core.
	KindTask Kind = iota
	// KindDeliver is a message commit at its destination.
	KindDeliver
	// KindGather is one bridge gather round.
	KindGather
	// KindScatter is one bridge scatter round.
	KindScatter
	// KindLB is one load-balancing command.
	KindLB
	// KindEpoch is a bulk-synchronization barrier.
	KindEpoch
	// KindFault is an injected fault event (kill, stall, overflow).
	KindFault
	nKinds
)

var kindNames = [nKinds]string{"task", "deliver", "gather", "scatter", "lb", "epoch", "fault"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded activity interval. Times are in NDP-core cycles.
type Event struct {
	Kind  Kind
	Actor int // unit ID, bridge rank, or -1 for system-level events
	Start uint64
	End   uint64
	Label string
}

// Recorder accumulates events up to a configurable cap (to bound memory on
// long runs; the default keeps the first two million events).
type Recorder struct {
	events  []Event
	cap     int
	dropped uint64

	// Causal flow state (span.go), active only after EnableFlows: spans with
	// parent links under their own cap, epoch boundary marks, and optional
	// per-category wait histograms bound by BindMetrics.
	flows     bool
	spans     []Span
	spanCap   int
	spanDrops uint64
	nextFlow  uint64
	epochs    []EpochMark
	catHist   [nCategories]*metrics.Histogram
}

// New returns a recorder with the given event capacity (0 = default 2M).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 2_000_000
	}
	return &Recorder{cap: capacity}
}

// Record appends an event. Nil receivers are no-ops so call sites need no
// guards beyond the nil check the compiler inlines.
func (r *Recorder) Record(k Kind, actor int, start, end uint64, label string) {
	if r == nil {
		return
	}
	if len(r.events) >= r.cap {
		r.dropped++
		return
	}
	if end < start {
		end = start
	}
	r.events = append(r.events, Event{Kind: k, Actor: actor, Start: start, End: end, Label: label})
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Dropped returns how many events exceeded the capacity.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained events (do not modify).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// ChromeTrace writes the events as a Chrome/Perfetto trace JSON array.
// Units appear as thread lanes; cycle timestamps are emitted as
// microseconds so the viewer's time axis reads directly in cycles. The
// first record is metadata carrying the retained/dropped counts, so a
// consumer can tell a complete capture from one truncated at the cap.
// A nil recorder writes a valid trace holding only that record.
func (r *Recorder) ChromeTrace(w io.Writer) error {
	capacity := 0
	if r != nil {
		capacity = r.cap
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		`[`+"\n"+`  {"name":"ndpbridge_trace_info","ph":"M","pid":0,"tid":0,"args":{"retained":%d,"dropped":%d,"capacity":%d}}`,
		r.Len(), r.Dropped(), capacity); err != nil {
		return err
	}
	if err := r.writeEventBody(bw); err != nil {
		return err
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeEventBody emits the interval-event records shared by ChromeTrace and
// FlowTrace (one ",\n  {...}" per event, continuing an open JSON array).
func (r *Recorder) writeEventBody(bw *bufio.Writer) error {
	for _, e := range r.Events() {
		dur := e.End - e.Start
		if dur == 0 {
			dur = 1
		}
		name := e.Label
		if name == "" {
			name = e.Kind.String()
		}
		if _, err := fmt.Fprintf(bw,
			",\n"+`  {"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d}`,
			name, e.Kind, e.Start, dur, e.Actor+1); err != nil {
			return err
		}
	}
	return nil
}

// Utilization returns, for each actor, the fraction of each of `buckets`
// equal time slices of [0, makespan) covered by task execution. Actors are
// returned in ascending ID order alongside the matrix.
func (r *Recorder) Utilization(makespan uint64, buckets int) (actors []int, util [][]float64) {
	if r == nil || makespan == 0 || buckets <= 0 {
		return nil, nil
	}
	per := make(map[int][]float64)
	width := float64(makespan) / float64(buckets)
	for _, e := range r.Events() {
		if e.Kind != KindTask {
			continue
		}
		row := per[e.Actor]
		if row == nil {
			row = make([]float64, buckets)
			per[e.Actor] = row
		}
		// Spread the interval across the buckets it overlaps.
		s, t := float64(e.Start), float64(e.End)
		for b := int(s / width); b < buckets && float64(b)*width < t; b++ {
			lo := float64(b) * width
			hi := lo + width
			if s > lo {
				lo = s
			}
			if t < hi {
				hi = t
			}
			if hi > lo {
				row[b] += (hi - lo) / width
			}
		}
	}
	for a := range per {
		actors = append(actors, a)
	}
	sort.Ints(actors)
	for _, a := range actors {
		util = append(util, per[a])
	}
	return actors, util
}

// Summary aggregates event counts and busy cycles per kind.
type Summary struct {
	Count map[Kind]uint64
	Busy  map[Kind]uint64
}

// Summarize computes totals across all events.
func (r *Recorder) Summarize() Summary {
	s := Summary{Count: make(map[Kind]uint64), Busy: make(map[Kind]uint64)}
	for _, e := range r.Events() {
		s.Count[e.Kind]++
		s.Busy[e.Kind] += e.End - e.Start
	}
	return s
}

// Heatmap renders the utilization matrix as a coarse ASCII heatmap, one row
// per actor — handy for eyeballing imbalance in a terminal.
func (r *Recorder) Heatmap(makespan uint64, buckets int) string {
	actors, util := r.Utilization(makespan, buckets)
	shades := []byte(" .:-=+*#%@")
	out := make([]byte, 0, len(actors)*(buckets+8))
	for i, a := range actors {
		out = append(out, []byte(fmt.Sprintf("%4d |", a))...)
		for _, u := range util[i] {
			idx := int(u * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx < 0 {
				idx = 0
			}
			out = append(out, shades[idx])
		}
		out = append(out, '|', '\n')
	}
	return string(out)
}
