package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ndpbridge/internal/metrics"
)

func TestNilRecorderSpansSafe(t *testing.T) {
	var r *Recorder
	if r.FlowsEnabled() {
		t.Error("nil recorder reports flows enabled")
	}
	r.EnableFlows(10) // must not panic
	if id := r.Span(1, 0, SpanExec, CatBankBusy, 0, 0, 10); id != 0 {
		t.Errorf("nil recorder Span = %d, want 0", id)
	}
	if id := r.OpenSpan(1, 0, SpanExec, CatBankBusy, 0, 0); id != 0 {
		t.Errorf("nil recorder OpenSpan = %d, want 0", id)
	}
	r.CloseSpan(1, 5)
	r.EpochMark(0, 0)
	if r.NewFlow() != 0 || r.SpanCount() != 0 || r.DroppedSpans() != 0 {
		t.Error("nil recorder span state must be inert")
	}
	if r.CritPath(100) != nil {
		t.Error("nil recorder CritPath must be nil")
	}
}

func TestFlowsDisabledNoops(t *testing.T) {
	r := New(10)
	if r.FlowsEnabled() {
		t.Fatal("flows on without EnableFlows")
	}
	if id := r.Span(1, 0, SpanExec, CatBankBusy, 0, 0, 10); id != 0 {
		t.Errorf("disabled Span = %d, want 0", id)
	}
	r.EpochMark(0, 0)
	if r.SpanCount() != 0 || len(r.Epochs()) != 0 {
		t.Error("disabled recorder retained span state")
	}
	if r.CritPath(100) != nil {
		t.Error("disabled recorder CritPath must be nil")
	}
}

func TestSpanCapAndDrops(t *testing.T) {
	r := New(10)
	r.EnableFlows(3)
	var last uint32
	for i := 0; i < 5; i++ {
		last = r.Span(1, last, SpanExec, CatBankBusy, 0, uint64(i), uint64(i+1))
	}
	if r.SpanCount() != 3 {
		t.Errorf("SpanCount = %d, want 3 (capped)", r.SpanCount())
	}
	if r.DroppedSpans() != 2 {
		t.Errorf("DroppedSpans = %d, want 2", r.DroppedSpans())
	}
	if last != 0 {
		t.Errorf("dropped span returned id %d, want 0 (a valid root parent)", last)
	}
	// OpenSpan drops past the cap too.
	if id := r.OpenSpan(1, 0, SpanExec, CatBankBusy, 0, 9); id != 0 {
		t.Errorf("OpenSpan past cap = %d, want 0", id)
	}
	if r.DroppedSpans() != 3 {
		t.Errorf("DroppedSpans = %d, want 3", r.DroppedSpans())
	}
	// The drop counts surface in the FlowTrace metadata record.
	var buf bytes.Buffer
	if err := r.FlowTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"spans":3,"spans_dropped":3`) {
		t.Errorf("metadata missing span drop counts:\n%s", buf.String())
	}
}

func TestSpanClampsReversedInterval(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	r.Span(1, 0, SpanExec, CatBankBusy, 0, 50, 20)
	sp := r.Spans()[0]
	if sp.Start != 20 || sp.End != 20 {
		t.Errorf("reversed span = [%d,%d], want clamped to [20,20]", sp.Start, sp.End)
	}
	id := r.OpenSpan(1, 0, SpanExec, CatBankBusy, 0, 30)
	r.CloseSpan(id, 10) // close before open: clamp to zero length
	sp = r.Spans()[1]
	if sp.Start != 30 || sp.End != 30 {
		t.Errorf("reversed close = [%d,%d], want [30,30]", sp.Start, sp.End)
	}
	r.CloseSpan(0, 99)   // id 0 = dropped span: no-op
	r.CloseSpan(999, 99) // out of range: no-op
}

func TestNewFlowDisjointFromTaskIDs(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	a, b := r.NewFlow(), r.NewFlow()
	if a == b {
		t.Error("NewFlow returned the same ID twice")
	}
	if a&(1<<63) == 0 || b&(1<<63) == 0 {
		t.Error("NewFlow IDs must carry the high bit to stay disjoint from task IDs")
	}
}

func TestFlowTraceIsValidJSON(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	r.Record(KindTask, 0, 0, 10, `label "quoted" \ and
control`)
	root := r.Span(1, 0, SpanQueued, CatTaskQueue, 0, 0, 5)
	exec := r.OpenSpan(1, root, SpanExec, CatBankBusy, 0, 5)
	r.CloseSpan(exec, 20)
	r.Span(1, exec, SpanMailbox, CatGatherBatch, 1, 20, 30)
	var buf bytes.Buffer
	if err := r.FlowTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("FlowTrace is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, starts, finishes int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			if args, ok := ev["args"].(map[string]any); ok {
				if _, isSpan := args["span"]; isSpan {
					spans++
				}
			}
		case "s":
			starts++
		case "f":
			finishes++
		}
	}
	if spans != 3 {
		t.Errorf("%d span events, want 3", spans)
	}
	// Two spans have parents, so two arrows, each an s/f pair.
	if starts != 2 || finishes != 2 {
		t.Errorf("%d/%d arrow events, want 2/2", starts, finishes)
	}
}

func TestFlowTraceEmptyAndNil(t *testing.T) {
	for name, r := range map[string]*Recorder{"nil": nil, "empty": New(10)} {
		var buf bytes.Buffer
		if err := r.FlowTrace(&buf); err != nil {
			t.Fatalf("%s recorder: %v", name, err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("%s recorder trace invalid: %v", name, err)
		}
		if len(events) != 1 {
			t.Errorf("%s recorder: %d events, want just the metadata record", name, len(events))
		}
	}
}

func TestBindMetricsFeedsCategoryHistograms(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	reg := metrics.NewRegistry()
	r.BindMetrics(reg)
	r.Span(1, 0, SpanQueued, CatTaskQueue, 0, 0, 40)
	id := r.OpenSpan(1, 0, SpanExec, CatBankBusy, 0, 40)
	r.CloseSpan(id, 100)
	if n := reg.FindHistogram("wait_task_queue_cycles").Count(); n != 1 {
		t.Errorf("wait_task_queue_cycles count = %d, want 1", n)
	}
	h := reg.FindHistogram("wait_bank_busy_cycles")
	if h.Count() != 1 {
		t.Errorf("wait_bank_busy_cycles count = %d, want 1", h.Count())
	}
	if m := h.Mean(); m != 60 {
		t.Errorf("wait_bank_busy_cycles mean = %v, want 60", m)
	}
}

func TestCritPathSimpleChain(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	r.EpochMark(0, 0)
	// queued [0,10] → exec [10,30] → mailbox [30,70] → exec [70,100]
	q := r.Span(1, 0, SpanQueued, CatTaskQueue, 0, 0, 10)
	e1 := r.Span(1, q, SpanExec, CatBankBusy, 0, 10, 30)
	m := r.Span(1, e1, SpanMailbox, CatGatherBatch, 0, 30, 70)
	r.Span(1, m, SpanExec, CatBankBusy, 1, 70, 100)
	// A decoy on another flow that finishes earlier.
	r.Span(2, 0, SpanExec, CatBankBusy, 2, 0, 60)
	rep := r.CritPath(100)
	if len(rep.Epochs) != 1 {
		t.Fatalf("%d epochs, want 1", len(rep.Epochs))
	}
	ep := rep.Epochs[0]
	if ep.PathSpans != 4 {
		t.Errorf("PathSpans = %d, want 4", ep.PathSpans)
	}
	want := CatCycles{BankBusy: 50, TaskQueue: 10, GatherBatch: 40}
	if ep.Attr != want {
		t.Errorf("Attr = %+v, want %+v", ep.Attr, want)
	}
	if cat, frac := rep.Total.Dominant(); cat != CatBankBusy || frac != 0.5 {
		t.Errorf("Dominant = %v %.2f, want bank-busy 0.50", cat, frac)
	}
}

func TestCritPathBillsGapsToSlack(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	r.EpochMark(0, 0)
	// Parent ends at 20, child starts at 50: a 30-cycle causal gap. The
	// epoch also has a 10-cycle untracked tail (90→100).
	p := r.Span(1, 0, SpanExec, CatBankBusy, 0, 0, 20)
	r.Span(1, p, SpanDeliver, CatHostRT, 1, 50, 90)
	rep := r.CritPath(100)
	want := CatCycles{BankBusy: 20, HostRT: 40, Slack: 40}
	if rep.Epochs[0].Attr != want {
		t.Errorf("Attr = %+v, want %+v", rep.Epochs[0].Attr, want)
	}
}

func TestCritPathZeroLengthBarrierSpan(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	r.EpochMark(0, 0)
	r.EpochMark(1, 50)
	// Real epoch-0 work ending exactly at the barrier.
	r.Span(1, 0, SpanExec, CatBankBusy, 0, 10, 50)
	// A zero-length queued span sitting on the barrier (a task seeded and
	// popped at the epoch boundary) — it must bill to epoch 1, not steal
	// epoch 0's last-to-finish slot with an empty parent chain.
	r.Span(2, 0, SpanQueued, CatTaskQueue, 0, 50, 50)
	r.Span(2, 2, SpanExec, CatBankBusy, 0, 50, 100)
	rep := r.CritPath(100)
	if got := rep.Epochs[0].Attr.BankBusy; got != 40 {
		t.Errorf("epoch 0 bank-busy = %d, want 40", got)
	}
	if got := rep.Epochs[1].Attr.BankBusy; got != 50 {
		t.Errorf("epoch 1 bank-busy = %d, want 50", got)
	}
}

// TestCritPathAttributionSumsToMakespan is the core invariant, property-style:
// random span forests and epoch marks, every epoch's attribution must sum
// exactly to the epoch's length and the total to the makespan.
func TestCritPathAttributionSumsToMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 200; trial++ {
		r := New(10)
		r.EnableFlows(0)
		makespan := uint64(rng.Intn(5000) + 100)
		// Epoch marks: 0..4 extra barriers at random cycles (mark 0 always).
		r.EpochMark(0, 0)
		nEpochs := rng.Intn(5)
		for i := 0; i < nEpochs; i++ {
			r.EpochMark(uint32(i+1), uint64(rng.Intn(int(makespan)+200)))
		}
		// Random forest: each span picks any earlier span (or none) as its
		// parent and a random interval, sometimes zero-length, sometimes
		// past the makespan.
		nSpans := rng.Intn(120)
		for i := 0; i < nSpans; i++ {
			var parent uint32
			if i > 0 && rng.Intn(3) > 0 {
				parent = uint32(rng.Intn(i) + 1)
			}
			start := uint64(rng.Intn(int(makespan) + 100))
			end := start + uint64(rng.Intn(200))
			if rng.Intn(5) == 0 {
				end = start
			}
			r.Span(uint64(rng.Intn(8)+1), parent, SpanKind(rng.Intn(int(nSpanKinds))),
				Category(rng.Intn(NumCategories)), rng.Intn(4), start, end)
		}
		rep := r.CritPath(makespan)
		var covered uint64
		for _, ep := range rep.Epochs {
			if got, want := ep.Attr.Total(), ep.End-ep.Start; got != want {
				t.Fatalf("trial %d: epoch %d attribution sums to %d, epoch is %d cycles",
					trial, ep.Epoch, got, want)
			}
			covered += ep.End - ep.Start
		}
		if covered != makespan {
			t.Fatalf("trial %d: epochs cover %d of %d cycles", trial, covered, makespan)
		}
		if rep.Total.Total() != makespan {
			t.Fatalf("trial %d: total attribution %d != makespan %d", trial, rep.Total.Total(), makespan)
		}
	}
}

func TestCritPathNoEpochMarks(t *testing.T) {
	r := New(10)
	r.EnableFlows(10)
	r.Span(1, 0, SpanExec, CatBankBusy, 0, 0, 100)
	rep := r.CritPath(100)
	if len(rep.Epochs) != 1 || rep.Epochs[0].Start != 0 || rep.Epochs[0].End != 100 {
		t.Fatalf("markless run must degenerate to one epoch, got %+v", rep.Epochs)
	}
	if rep.Total.BankBusy != 100 {
		t.Errorf("bank-busy = %d, want 100", rep.Total.BankBusy)
	}
}

func TestCritPathRenderDeterministic(t *testing.T) {
	build := func() string {
		r := New(10)
		r.EnableFlows(10)
		r.EpochMark(0, 0)
		r.EpochMark(1, 40)
		a := r.Span(1, 0, SpanQueued, CatTaskQueue, 0, 0, 15)
		r.Span(1, a, SpanExec, CatBankBusy, 0, 15, 40)
		r.Span(2, 0, SpanBridgeQ, CatBridgeQueue, 1, 40, 90)
		return r.CritPath(100).Render()
	}
	if build() != build() {
		t.Error("Render is not deterministic")
	}
	out := build()
	for _, want := range []string{"critical-path attribution", "dominant bottleneck:", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
