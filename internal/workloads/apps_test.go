package workloads

import (
	"math"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
)

// smallCfg builds an 8-unit test system.
func smallCfg(d config.Design) config.Config {
	cfg := config.Default().WithDesign(d)
	cfg.Geometry = config.Geometry{
		Channels: 2, RanksPerChannel: 1, ChipsPerRank: 2, BanksPerChip: 2,
		BankBytes: 8 << 20,
	}
	cfg.Metadata.BridgeBorrowedEntries = 2048
	cfg.Metadata.BridgeBorrowedWays = 16
	return cfg
}

func runSmall(t *testing.T, name string, d config.Design) (core.App, uint64) {
	t.Helper()
	app, err := NewSmall(name)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(smallCfg(d))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatalf("%s/%v: %v", name, d, err)
	}
	if r.Makespan == 0 || r.TasksExecuted == 0 {
		t.Fatalf("%s/%v: empty run: %+v", name, d, r)
	}
	if r.TasksExecuted != r.TasksSpawned {
		t.Fatalf("%s/%v: task conservation violated: %d executed vs %d spawned",
			name, d, r.TasksExecuted, r.TasksSpawned)
	}
	return app, r.Makespan
}

func TestAllAppsAllDesigns(t *testing.T) {
	designs := []config.Design{
		config.DesignC, config.DesignB, config.DesignW,
		config.DesignO, config.DesignH, config.DesignR,
	}
	for _, name := range Names {
		for _, d := range designs {
			name, d := name, d
			t.Run(name+"/"+d.String(), func(t *testing.T) {
				runSmall(t, name, d)
			})
		}
	}
}

func TestBFSVisitsSameSetAcrossDesigns(t *testing.T) {
	var counts []int
	for _, d := range []config.Design{config.DesignB, config.DesignO, config.DesignH} {
		app, _ := runSmall(t, "bfs", d)
		counts = append(counts, app.(*BFS).VisitedCount())
	}
	if counts[0] == 0 {
		t.Fatal("BFS visited nothing")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("visited count differs across designs: %v", counts)
		}
	}
}

func TestSSSPReachesSameSetAcrossDesigns(t *testing.T) {
	a, _ := runSmall(t, "sssp", config.DesignB)
	b, _ := runSmall(t, "sssp", config.DesignO)
	if a.(*SSSP).Reached() == 0 {
		t.Fatal("SSSP reached nothing")
	}
	if a.(*SSSP).Reached() != b.(*SSSP).Reached() {
		t.Errorf("reached set differs: %d vs %d", a.(*SSSP).Reached(), b.(*SSSP).Reached())
	}
	// Distances must agree exactly (deterministic weights, same graph).
	da, db := a.(*SSSP).dist, b.(*SSSP).dist
	for v := range da {
		if da[v] != db[v] {
			t.Fatalf("distance of %d differs: %d vs %d", v, da[v], db[v])
		}
	}
}

func TestWCCLabelsConverge(t *testing.T) {
	a, _ := runSmall(t, "wcc", config.DesignO)
	labels := a.(*WCC).Labels()
	g := a.(*WCC).l.G
	// Fixed point: no edge can still lower a label.
	for v := 0; v < g.V; v++ {
		for _, w := range g.Neighbors(v) {
			if labels[v] < labels[w] {
				t.Fatalf("not converged: edge %d→%d with labels %d→%d", v, w, labels[v], labels[w])
			}
		}
	}
	// Every vertex got a label at most its own ID.
	for v, l := range labels {
		if l > int32(v) {
			t.Fatalf("vertex %d kept label %d", v, l)
		}
	}
}

func TestPageRankMassConserved(t *testing.T) {
	a, _ := runSmall(t, "pr", config.DesignO)
	ranks := a.(*PR).Ranks()
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	// Mass leaks only through dangling vertices; the total must stay
	// within (0, 1].
	if sum <= 0 || sum > 1.0001 {
		t.Errorf("rank mass = %v", sum)
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	a, _ := runSmall(t, "pr", config.DesignB)
	got := a.(*PR).Ranks()
	g := a.(*PR).l.G
	iters := SmallGraphParams().Iters

	// Reference: sequential synchronous PageRank, same damping.
	v := float64(g.V)
	ref := make([]float64, g.V)
	next := make([]float64, g.V)
	for i := range ref {
		ref[i] = 1 / v
	}
	for it := 0; it < iters-0; it++ {
		for i := range next {
			next[i] = 0
		}
		for s := 0; s < g.V; s++ {
			d := g.Degree(s)
			if d == 0 {
				continue
			}
			c := ref[s] / float64(d)
			for _, w := range g.Neighbors(s) {
				next[w] += c
			}
		}
		for i := range ref {
			ref[i] = 0.15/v + 0.85*next[i]
		}
	}
	// The simulated version folds at epoch boundaries; after `iters`
	// seeded epochs only iters-1 folds have happened plus the final
	// accumulation is left unfolded. Compare against the matching fold
	// count by recomputing with iters-1 folds.
	ref2 := make([]float64, g.V)
	next2 := make([]float64, g.V)
	for i := range ref2 {
		ref2[i] = 1 / v
	}
	for it := 0; it < iters-1; it++ {
		for i := range next2 {
			next2[i] = 0
		}
		for s := 0; s < g.V; s++ {
			d := g.Degree(s)
			if d == 0 {
				continue
			}
			c := ref2[s] / float64(d)
			for _, w := range g.Neighbors(s) {
				next2[w] += c
			}
		}
		for i := range ref2 {
			ref2[i] = 0.15/v + 0.85*next2[i]
		}
	}
	for i := range got {
		if math.Abs(got[i]-ref2[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, reference %v", i, got[i], ref2[i])
		}
	}
}

func TestSpMVResultIndependentOfDesign(t *testing.T) {
	a, _ := runSmall(t, "spmv", config.DesignB)
	b, _ := runSmall(t, "spmv", config.DesignO)
	ya, yb := a.(*SpMV).Result(), b.(*SpMV).Result()
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("row %d differs: %v vs %v", i, ya[i], yb[i])
		}
	}
	// Each row's result equals its nnz count (synthetic ones).
	g := a.(*SpMV).l.G
	for v := 0; v < g.V; v++ {
		if ya[v] != float64(g.Degree(v)) {
			t.Fatalf("row %d = %v, want %d", v, ya[v], g.Degree(v))
		}
	}
}

func TestLayoutBlockDiscipline(t *testing.T) {
	sys, err := core.New(smallCfg(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	g := RMAT(sys.Rand().Split(), 8, 4)
	l := NewGraphLayout(sys, g)
	gx := sys.Cfg().GXfer
	for v := 0; v < g.V; v++ {
		// Vertex records must not straddle blocks.
		if l.VAddr[v]/gx != (l.VAddr[v]+vertexRecordBytes-1)/gx {
			t.Fatalf("vertex %d record straddles a block", v)
		}
		// Segments must be block-aligned and cover the degree.
		total := 0
		for si, a := range l.SegAddr[v] {
			if a%gx != 0 {
				t.Fatalf("segment %d of %d misaligned", si, v)
			}
			if int(l.SegLen[v][si]) > l.SegCap {
				t.Fatalf("segment too long")
			}
			total += int(l.SegLen[v][si])
		}
		if total != g.Degree(v) {
			t.Fatalf("vertex %d segments cover %d of %d edges", v, total, g.Degree(v))
		}
		// Segment neighbor slices reconstruct the adjacency exactly.
		var rec []int32
		for si := range l.SegAddr[v] {
			rec = append(rec, l.SegNeighbors(v, si)...)
		}
		ns := g.Neighbors(v)
		for i := range ns {
			if rec[i] != ns[i] {
				t.Fatalf("vertex %d neighbor %d mismatch", v, i)
			}
		}
	}
}

func TestNewUnknownApp(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Error("unknown app must error")
	}
	for _, n := range Names {
		if _, err := New(n); err != nil {
			t.Errorf("New(%s): %v", n, err)
		}
	}
}
