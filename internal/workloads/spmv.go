package workloads

import (
	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// SpMVParams configures sparse matrix-vector multiplication over an RMAT
// matrix (standing in for the UFL collection): rows are partitioned
// contiguously and split into block-sized segments, so every task reads one
// local block and the baseline needs no communication. The power-law row
// lengths concentrate work on a few units — load imbalance without traffic.
type SpMVParams struct {
	Scale      int // 2^Scale rows
	EdgeFactor int // nnz per row on average
	Seed       uint64
}

// DefaultSpMVParams sizes the workload for the 512-unit system.
func DefaultSpMVParams() SpMVParams { return SpMVParams{Scale: 16, EdgeFactor: 8, Seed: 19} }

// SmallSpMVParams sizes the workload for small test systems.
func SmallSpMVParams() SpMVParams { return SpMVParams{Scale: 8, EdgeFactor: 4, Seed: 19} }

const spmvEntryCycles = 12

// SpMV computes y = A·x with one task per row segment. The x values are
// replicated per unit (the standard NDP data interleaving), so their access
// cost is folded into the compute charge.
type SpMV struct {
	p  SpMVParams
	l  *GraphLayout
	fn task.FuncID
	y  []float64
}

// NewSpMV builds the application.
func NewSpMV(p SpMVParams) *SpMV { return &SpMV{p: p} }

// Name implements core.App.
func (a *SpMV) Name() string { return "spmv" }

// Prepare implements core.App.
func (a *SpMV) Prepare(s *core.System) error {
	g := RMAT(sim.NewRNG(a.p.Seed), a.p.Scale, a.p.EdgeFactor)
	a.l = NewGraphLayout(s, g)
	a.y = make([]float64, g.V)
	a.fn = s.Register("spmv.rowseg", a.rowseg)
	return nil
}

func (a *SpMV) rowseg(ctx task.Ctx, t task.Task) {
	row, si := int(t.Args[0]), int(t.Args[1])
	n := uint64(a.l.SegLen[row][si])
	ctx.Read(t.Addr, a.l.SegBytes(row, si))
	ctx.Compute(n * spmvEntryCycles)
	// Semantic result: count contributions (values are synthetic ones).
	a.y[row] += float64(n)
}

// SeedEpoch implements core.App: one epoch covering every row segment.
func (a *SpMV) SeedEpoch(s *core.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	for v := 0; v < a.l.G.V; v++ {
		for si := range a.l.SegAddr[v] {
			w := uint32(a.l.SegLen[v][si])*spmvEntryCycles + 20
			s.Seed(task.New(a.fn, 0, a.l.SegAddr[v][si], w, uint64(v), uint64(si)))
		}
	}
	return true
}

// Result exposes the computed vector for verification in tests.
func (a *SpMV) Result() []float64 { return a.y }
