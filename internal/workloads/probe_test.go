package workloads

import (
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/task"
)

// hotRoot mimics a serialized hot spot: N root tasks at unit 0, each
// spawning a chain of depth hops across pseudo-random units.
type hotRoot struct {
	n, depth int
	fn       task.FuncID
}

func (a *hotRoot) Name() string { return "hotroot" }

func (a *hotRoot) Prepare(s *core.System) error {
	units := s.Units()
	a.fn = s.Register("hr", func(ctx task.Ctx, t task.Task) {
		ctx.Read(t.Addr, 64)
		ctx.Compute(80)
		hop := int(t.Args[0])
		if hop < a.depth {
			q := t.Args[1]
			next := int((q*2654435761 + uint64(hop)*40503) % uint64(units))
			ctx.Enqueue(task.New(a.fn, t.TS, s.UnitBase(next)+uint64(q%1000)*256, 100, uint64(hop+1), q))
		}
	})
	return nil
}

func (a *hotRoot) SeedEpoch(s *core.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	for q := 0; q < a.n; q++ {
		s.Seed(task.New(a.fn, 0, s.UnitBase(0)+uint64(q%1000)*256, 100, 0, uint64(q)))
	}
	return true
}

// TestFabricKeepsUpWithSerializedProducer: when one unit is the serialized
// producer of all work, the fabric must deliver downstream tasks fast enough
// that the makespan stays close to the producer's busy time (small wait
// fraction). This is a full-scale (512-unit) throughput regression guard.
func TestFabricKeepsUpWithSerializedProducer(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale system")
	}
	sys, err := core.New(config.Default().WithDesign(config.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	app := &hotRoot{n: 2000, depth: 10}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if w := r.WaitFrac(); w > 0.25 {
		t.Errorf("wait fraction %.2f too high: fabric cannot keep up", w)
	}
	if r.TasksExecuted != 2000*11 {
		t.Errorf("tasks = %d, want %d", r.TasksExecuted, 2000*11)
	}
}
