package workloads

import (
	"math"
	"testing"

	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
)

func runStencil(t *testing.T, d config.Design) *Stencil {
	t.Helper()
	app := NewStencil(SmallStencilParams())
	sys, err := core.New(smallCfg(d))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(app); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestStencilMatchesReference(t *testing.T) {
	app := runStencil(t, config.DesignB)
	p := SmallStencilParams()

	// Sequential reference: Jacobi averaging with the same init.
	w, h := p.Width, p.Height
	val := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			val[y*w+x] = float64((x*31+y*17)%256) / 256
		}
	}
	// The simulated version folds at epoch starts, so after Iters seeded
	// epochs only Iters−1 folds happened.
	for it := 0; it < p.Iters-1; it++ {
		next := make([]float64, w*h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				sum, n := 0.0, 0
				add := func(xx, yy int) {
					if xx >= 0 && xx < w && yy >= 0 && yy < h {
						sum += val[yy*w+xx]
						n++
					}
				}
				add(x-1, y)
				add(x+1, y)
				add(x, y-1)
				add(x, y+1)
				if n > 0 {
					next[y*w+x] = sum / float64(n)
				}
			}
		}
		val = next
	}
	got := app.Values()
	for i := range val {
		// The push path quantizes values to 1e-6.
		if math.Abs(got[i]-val[i]) > 1e-4 {
			t.Fatalf("pixel %d = %v, reference %v", i, got[i], val[i])
		}
	}
}

func TestStencilSameAcrossDesigns(t *testing.T) {
	a := runStencil(t, config.DesignB)
	b := runStencil(t, config.DesignO)
	va, vb := a.Values(), b.Values()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("pixel %d differs across designs: %v vs %v", i, va[i], vb[i])
		}
	}
}

func TestStencilViaRegistry(t *testing.T) {
	app, err := NewSized("stencil", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "stencil" {
		t.Errorf("Name = %s", app.Name())
	}
}
