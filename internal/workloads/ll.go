package workloads

import (
	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// LLParams configures linked-list traversal: Lists lists whose nodes live
// wholly in one unit each (so the baseline needs no communication,
// Section VIII-A), queried by Zipfian-popular traversals.
type LLParams struct {
	Lists   int
	AvgLen  int
	Queries int
	Theta   float64
	Seed    uint64
}

// DefaultLLParams sizes the workload for the 512-unit system.
func DefaultLLParams() LLParams {
	return LLParams{Lists: 4096, AvgLen: 24, Queries: 24576, Theta: 0.99, Seed: 11}
}

// SmallLLParams sizes the workload for small test systems.
func SmallLLParams() LLParams {
	return LLParams{Lists: 32, AvgLen: 8, Queries: 128, Theta: 0.99, Seed: 11}
}

const (
	llNodeBytes  = 64
	llNodeCycles = 80
)

// LL is the linked-list traversal application: each query walks one list
// node by node; every hop is a child task bound to the next node's address.
type LL struct {
	p       LLParams
	nodes   [][]uint64 // per list, node addresses
	queries []int32
	fn      task.FuncID
}

// NewLL builds the application.
func NewLL(p LLParams) *LL { return &LL{p: p} }

// Name implements core.App.
func (a *LL) Name() string { return "ll" }

// Prepare implements core.App.
func (a *LL) Prepare(s *core.System) error {
	rng := sim.NewRNG(a.p.Seed)
	units := s.Units()
	placer := NewPlacer(s)
	a.nodes = make([][]uint64, a.p.Lists)
	// List lengths are themselves skewed: popular lists are longer,
	// compounding the Zipfian query imbalance.
	lengthOf := func(l int) int {
		n := 1 + a.p.AvgLen*2*(a.p.Lists-l)/(a.p.Lists+1)
		if n < 1 {
			n = 1
		}
		return n
	}
	for l := 0; l < a.p.Lists; l++ {
		u := l % units
		n := lengthOf(l)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = placer.Alloc(u, llNodeBytes, llNodeBytes)
		}
		a.nodes[l] = addrs
	}
	z := NewZipf(rng, a.p.Lists, a.p.Theta)
	a.queries = make([]int32, a.p.Queries)
	for i := range a.queries {
		a.queries[i] = int32(z.Next())
	}
	a.fn = s.Register("ll.step", a.step)
	return nil
}

func (a *LL) step(ctx task.Ctx, t task.Task) {
	list, idx := int(t.Args[0]), int(t.Args[1])
	ctx.Read(t.Addr, llNodeBytes)
	ctx.Compute(llNodeCycles)
	if next := idx + 1; next < len(a.nodes[list]) {
		ctx.Enqueue(task.New(a.fn, t.TS, a.nodes[list][next], llNodeCycles+15,
			uint64(list), uint64(next)))
	}
}

// SeedEpoch implements core.App: one epoch of Zipfian queries.
func (a *LL) SeedEpoch(s *core.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	for _, q := range a.queries {
		s.Seed(task.New(a.fn, 0, a.nodes[q][0], llNodeCycles+15, uint64(q), 0))
	}
	return true
}
