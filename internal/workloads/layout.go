package workloads

import (
	"fmt"

	"ndpbridge/internal/core"
)

// Placer hands out per-unit data addresses with alignment, modeling the
// coarse-grained interleaving of UPMEM/HBM-PIM where each unit's working set
// is contiguous in its local bank (Section II-B).
type Placer struct {
	next  []uint64
	base  []uint64
	limit uint64
}

// NewPlacer builds a placer over all of s's units.
func NewPlacer(s *core.System) *Placer {
	n := s.Units()
	p := &Placer{next: make([]uint64, n), base: make([]uint64, n), limit: s.DataBytesPerUnit()}
	for u := 0; u < n; u++ {
		p.base[u] = s.UnitBase(u)
	}
	return p
}

// Alloc reserves size bytes in unit u's bank, aligned to align (a power of
// two), and returns the address. It panics when a bank overflows — dataset
// parameters must fit the configuration.
func (p *Placer) Alloc(u int, size, align uint64) uint64 {
	off := (p.next[u] + align - 1) &^ (align - 1)
	if off+size > p.limit {
		panic(fmt.Sprintf("workloads: unit %d data region overflow (%d + %d > %d)", u, off, size, p.limit))
	}
	p.next[u] = off + size
	return p.base[u] + off
}

// Used returns the bytes allocated in unit u.
func (p *Placer) Used(u int) uint64 { return p.next[u] }

// GraphLayout places a CSR graph across the units: vertices are partitioned
// contiguously (vertex records of 64 B, packed four per G_xfer block), and
// each vertex's adjacency list is stored in its owner's bank as a chain of
// block-sized segments so that every task touches at most one block.
type GraphLayout struct {
	G       *Graph
	VAddr   []uint64   // vertex record address
	SegAddr [][]uint64 // adjacency segment block addresses per vertex
	SegLen  [][]int32  // entries per segment
	SegCap  int        // neighbors per segment
	owner   []int32
}

const vertexRecordBytes = 64

// NewGraphLayout partitions g over sys's units contiguously by vertex ID.
// RMAT's recursive quadrant bias concentrates hubs at low IDs, so this
// natural order already yields the locality real deployments get from
// cluster-aware renumbering, without manufacturing artificial hotspots.
func NewGraphLayout(sys *core.System, g *Graph) *GraphLayout {
	units := sys.Units()
	gx := sys.Cfg().GXfer
	segCap := int(gx / 4) // int32 neighbor IDs
	l := &GraphLayout{
		G:       g,
		VAddr:   make([]uint64, g.V),
		SegAddr: make([][]uint64, g.V),
		SegLen:  make([][]int32, g.V),
		SegCap:  segCap,
		owner:   make([]int32, g.V),
	}
	p := NewPlacer(sys)
	for v := 0; v < g.V; v++ {
		u := v * units / g.V
		l.owner[v] = int32(u)
		l.VAddr[v] = p.Alloc(u, vertexRecordBytes, vertexRecordBytes)
		deg := g.Degree(v)
		for off := 0; off < deg; off += segCap {
			n := deg - off
			if n > segCap {
				n = segCap
			}
			l.SegAddr[v] = append(l.SegAddr[v], p.Alloc(u, gx, gx))
			l.SegLen[v] = append(l.SegLen[v], int32(n))
		}
	}
	return l
}

// Owner returns the home unit of vertex v.
func (l *GraphLayout) Owner(v int) int { return int(l.owner[v]) }

// SegNeighbors returns the neighbor IDs covered by segment si of vertex v.
func (l *GraphLayout) SegNeighbors(v, si int) []int32 {
	start := int(l.G.Offsets[v]) + si*l.SegCap
	return l.G.Edges[start : start+int(l.SegLen[v][si])]
}

// SegBytes returns the payload bytes of segment si of vertex v.
func (l *GraphLayout) SegBytes(v, si int) uint64 { return uint64(l.SegLen[v][si]) * 4 }
