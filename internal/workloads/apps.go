package workloads

import (
	"fmt"

	"ndpbridge/internal/core"
)

// Names lists the eight evaluated applications in the paper's order.
var Names = []string{"ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", "wcc"}

// Size selects a workload parameter set.
type Size int

const (
	// SizeFull is the paper-sized workload for the 512-unit system.
	SizeFull Size = iota
	// SizeMedium keeps the full system but cuts task counts ~4×, for
	// benchmarking the whole figure suite in minutes.
	SizeMedium
	// SizeSmall fits 8-unit test systems.
	SizeSmall
)

// New builds an application by name at the default (paper-sized) parameters.
func New(name string) (core.App, error) { return NewSized(name, SizeFull) }

// NewSmall builds an application by name at test-sized parameters.
func NewSmall(name string) (core.App, error) { return NewSized(name, SizeSmall) }

// NewMedium builds an application by name at bench-sized parameters.
func NewMedium(name string) (core.App, error) { return NewSized(name, SizeMedium) }

// NewSized builds an application by name at the requested size.
func NewSized(name string, sz Size) (core.App, error) {
	switch name {
	case "ll":
		return NewLL(pick(sz, DefaultLLParams, MediumLLParams, SmallLLParams)), nil
	case "ht":
		return NewHT(pick(sz, DefaultHTParams, MediumHTParams, SmallHTParams)), nil
	case "tree":
		return NewTree(pick(sz, DefaultTreeParams, MediumTreeParams, SmallTreeParams)), nil
	case "spmv":
		return NewSpMV(pick(sz, DefaultSpMVParams, MediumSpMVParams, SmallSpMVParams)), nil
	case "bfs":
		return NewBFS(pick(sz, DefaultGraphParams, MediumGraphParams, SmallGraphParams)), nil
	case "sssp":
		return NewSSSP(pick(sz, DefaultGraphParams, MediumGraphParams, SmallGraphParams)), nil
	case "pr":
		return NewPR(pick(sz, DefaultGraphParams, MediumGraphParams, SmallGraphParams)), nil
	case "wcc":
		return NewWCC(pick(sz, DefaultGraphParams, MediumGraphParams, SmallGraphParams)), nil
	case "stencil":
		return NewStencil(pick(sz, DefaultStencilParams, MediumStencilParams, SmallStencilParams)), nil
	}
	return nil, fmt.Errorf("workloads: unknown application %q (want one of %v)", name, Names)
}

// pick selects a parameter constructor by size.
func pick[P any](sz Size, full, medium, small func() P) P {
	switch sz {
	case SizeMedium:
		return medium()
	case SizeSmall:
		return small()
	}
	return full()
}
