// Package workloads implements the eight data-intensive applications of the
// paper's evaluation (Section VII) on the NDPBridge task-based programming
// model — linked-list traversal, hash table, tree traversal, SpMV, BFS,
// SSSP, PageRank, and weakly connected components — together with the
// synthetic dataset generators standing in for the paper's SNAP graphs and
// UFL matrices: an RMAT power-law graph generator and Zipfian query
// generators (the paper itself uses Zipfian data/queries for ll, ht, tree).
package workloads

import (
	"math"

	"ndpbridge/internal/sim"
)

// Zipf draws values in [0, n) with P(k) ∝ 1/(k+1)^theta. It uses the
// classic inverted-CDF-over-precomputed-harmonics method, exact and
// deterministic for moderate n.
type Zipf struct {
	cdf []float64
	rng *sim.RNG
}

// NewZipf builds a Zipfian sampler over n items with skew theta (theta=0 is
// uniform; the paper-style hot skew uses ~0.99).
func NewZipf(rng *sim.RNG, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("workloads: Zipf needs positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next samples one value.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Graph is a directed graph in CSR form.
type Graph struct {
	V       int
	Offsets []int32 // len V+1
	Edges   []int32 // len E
}

// E returns the edge count.
func (g *Graph) E() int { return len(g.Edges) }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns vertex v's adjacency slice (do not modify).
func (g *Graph) Neighbors(v int) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// RMAT generates a scale-free directed graph with 2^scale vertices and
// approximately edgeFactor × V edges using the R-MAT recursive quadrant
// process (a=0.57, b=c=0.19), the standard stand-in for power-law real-world
// graphs. Self-loops are kept (harmless for our kernels); duplicate edges
// are kept too, matching multigraph traffic.
func RMAT(rng *sim.RNG, scale, edgeFactor int) *Graph {
	v := 1 << scale
	e := v * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	type edge struct{ src, dst int32 }
	edges := make([]edge, 0, e)
	for i := 0; i < e; i++ {
		var src, dst int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges = append(edges, edge{int32(src), int32(dst)})
	}
	// Counting sort into CSR.
	offsets := make([]int32, v+1)
	for _, ed := range edges {
		offsets[ed.src+1]++
	}
	for i := 1; i <= v; i++ {
		offsets[i] += offsets[i-1]
	}
	adj := make([]int32, len(edges))
	cursor := make([]int32, v)
	copy(cursor, offsets[:v])
	for _, ed := range edges {
		adj[cursor[ed.src]] = ed.dst
		cursor[ed.src]++
	}
	return &Graph{V: v, Offsets: offsets, Edges: adj}
}

// Chain generates a deterministic path graph, useful in tests.
func Chain(n int) *Graph {
	offsets := make([]int32, n+1)
	edges := make([]int32, 0, n-1)
	for v := 0; v < n; v++ {
		offsets[v] = int32(len(edges))
		if v+1 < n {
			edges = append(edges, int32(v+1))
		}
	}
	offsets[n] = int32(len(edges))
	return &Graph{V: n, Offsets: offsets, Edges: edges}
}

// MaxDegree returns the largest out-degree, a skew indicator.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.V; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}
