package workloads

import (
	"ndpbridge/internal/core"
	"ndpbridge/internal/task"
)

// StencilParams configures the 2D stencil workload — the example the paper
// itself uses to explain push-style programming (Section IV): "(1) each
// pixel pushes its current value (by invoking tasks) to all its neighbors;
// (2) each pixel uses the received value to update its own value."
// The grid is row-partitioned over the units; each iteration is one epoch
// of push tasks followed by accumulate tasks at the neighbors.
type StencilParams struct {
	Width  int
	Height int
	Iters  int
	Seed   uint64
}

// DefaultStencilParams sizes the grid for the 512-unit system.
func DefaultStencilParams() StencilParams {
	return StencilParams{Width: 512, Height: 512, Iters: 3, Seed: 29}
}

// MediumStencilParams sizes the grid for benchmarking.
func MediumStencilParams() StencilParams {
	return StencilParams{Width: 256, Height: 256, Iters: 2, Seed: 29}
}

// SmallStencilParams sizes the grid for small test systems.
func SmallStencilParams() StencilParams {
	return StencilParams{Width: 32, Height: 32, Iters: 2, Seed: 29}
}

const (
	pixelBytes  = 16 // value + accumulator
	pixelCycles = 25
	accCycles   = 8
)

// Stencil is a 5-point Jacobi smoothing pass in push style. Rows are
// partitioned contiguously, so three of four neighbor pushes stay in the
// local unit and the row-boundary pushes cross banks — the classic
// halo-exchange pattern.
type Stencil struct {
	p      StencilParams
	addr   []uint64 // pixel record address, row-major
	val    []float64
	acc    []int64 // micro-units: integer so accumulation order cannot matter
	deg    []int32
	fnPush task.FuncID
	fnAcc  task.FuncID
}

// NewStencil builds the application.
func NewStencil(p StencilParams) *Stencil { return &Stencil{p: p} }

// Name implements core.App.
func (a *Stencil) Name() string { return "stencil" }

func (a *Stencil) idx(x, y int) int { return y*a.p.Width + x }

// Prepare implements core.App.
func (a *Stencil) Prepare(s *core.System) error {
	n := a.p.Width * a.p.Height
	units := s.Units()
	placer := NewPlacer(s)
	a.addr = make([]uint64, n)
	a.val = make([]float64, n)
	a.acc = make([]int64, n)
	a.deg = make([]int32, n)
	for y := 0; y < a.p.Height; y++ {
		u := y * units / a.p.Height
		for x := 0; x < a.p.Width; x++ {
			i := a.idx(x, y)
			a.addr[i] = placer.Alloc(u, pixelBytes, pixelBytes)
			a.val[i] = float64((x*31+y*17)%256) / 256
			a.deg[i] = int32(a.neighborCount(x, y))
		}
	}
	a.fnPush = s.Register("stencil.push", a.push)
	a.fnAcc = s.Register("stencil.acc", a.accumulate)
	return nil
}

func (a *Stencil) neighborCount(x, y int) int {
	n := 0
	if x > 0 {
		n++
	}
	if x < a.p.Width-1 {
		n++
	}
	if y > 0 {
		n++
	}
	if y < a.p.Height-1 {
		n++
	}
	return n
}

// push sends the pixel's value to its four neighbors.
func (a *Stencil) push(ctx task.Ctx, t task.Task) {
	i := int(t.Args[0])
	x, y := i%a.p.Width, i/a.p.Width
	ctx.Read(t.Addr, pixelBytes)
	ctx.Compute(pixelCycles)
	v := a.val[i]
	send := func(nx, ny int) {
		j := a.idx(nx, ny)
		ctx.Enqueue(task.New(a.fnAcc, t.TS, a.addr[j], accCycles+8,
			uint64(j), uint64(int64(v*1e6))))
	}
	if x > 0 {
		send(x-1, y)
	}
	if x < a.p.Width-1 {
		send(x+1, y)
	}
	if y > 0 {
		send(x, y-1)
	}
	if y < a.p.Height-1 {
		send(x, y+1)
	}
}

// accumulate folds a neighbor's value into the pixel's accumulator.
func (a *Stencil) accumulate(ctx task.Ctx, t task.Task) {
	j := int(t.Args[0])
	a.acc[j] += int64(t.Args[1])
	ctx.Write(t.Addr, 8)
	ctx.Compute(accCycles)
}

// SeedEpoch implements core.App: each epoch pushes every pixel and folds the
// accumulated neighbor values at the barrier.
func (a *Stencil) SeedEpoch(s *core.System, ts uint32) bool {
	if int(ts) >= a.p.Iters {
		return false
	}
	if ts > 0 {
		for i := range a.val {
			if a.deg[i] > 0 {
				a.val[i] = float64(a.acc[i]) / 1e6 / float64(a.deg[i])
			}
			a.acc[i] = 0
		}
	}
	for i := range a.addr {
		s.Seed(task.New(a.fnPush, ts, a.addr[i], pixelCycles+20, uint64(i)))
	}
	return true
}

// Values exposes the grid for verification.
func (a *Stencil) Values() []float64 { return a.val }
