package workloads

import (
	"math"
	"ndpbridge/internal/sim"

	"ndpbridge/internal/core"
	"ndpbridge/internal/task"
)

// PR is bulk-synchronous PageRank: each iteration is one epoch in which every
// vertex pushes rank/degree to its neighbors (the push-task style of
// Section IV), and the damping fold happens at the barrier.
type PR struct {
	p      GraphParams
	l      *GraphLayout
	rank   []float64
	next   []float64
	fnPush task.FuncID
	fnScan task.FuncID
	fnAcc  task.FuncID
}

// NewPR builds the application.
func NewPR(p GraphParams) *PR { return &PR{p: p} }

// Name implements core.App.
func (a *PR) Name() string { return "pr" }

// Prepare implements core.App.
func (a *PR) Prepare(s *core.System) error {
	g := RMAT(sim.NewRNG(a.p.Seed), a.p.Scale, a.p.EdgeFactor)
	a.l = NewGraphLayout(s, g)
	a.rank = make([]float64, g.V)
	a.next = make([]float64, g.V)
	for i := range a.rank {
		a.rank[i] = 1 / float64(g.V)
	}
	a.fnPush = s.Register("pr.push", a.push)
	a.fnScan = s.Register("pr.scan", a.scan)
	a.fnAcc = s.Register("pr.acc", a.acc)
	return nil
}

func (a *PR) push(ctx task.Ctx, t task.Task) {
	v := int(t.Args[0])
	ctx.Read(t.Addr, vertexRecordBytes)
	ctx.Compute(visitCycles)
	deg := a.l.G.Degree(v)
	if deg == 0 {
		return
	}
	contrib := math.Float64bits(a.rank[v] / float64(deg))
	for si := range a.l.SegAddr[v] {
		w := uint32(a.l.SegLen[v][si])*scanCycles + 10
		ctx.Enqueue(task.New(a.fnScan, t.TS, a.l.SegAddr[v][si], w,
			uint64(v), uint64(si), contrib))
	}
}

func (a *PR) scan(ctx task.Ctx, t task.Task) {
	v, si, contrib := int(t.Args[0]), int(t.Args[1]), t.Args[2]
	ctx.Read(t.Addr, a.l.SegBytes(v, si))
	ctx.Compute(uint64(a.l.SegLen[v][si]) * scanCycles)
	for _, w := range a.l.SegNeighbors(v, si) {
		ctx.Enqueue(task.New(a.fnAcc, t.TS, a.l.VAddr[w], 30, uint64(w), contrib))
	}
}

func (a *PR) acc(ctx task.Ctx, t task.Task) {
	w := int(t.Args[0])
	a.next[w] += math.Float64frombits(t.Args[1])
	ctx.Write(t.Addr, 8)
	ctx.Compute(24)
}

// SeedEpoch implements core.App: each epoch is one PageRank iteration.
func (a *PR) SeedEpoch(s *core.System, ts uint32) bool {
	if int(ts) >= a.p.Iters {
		return false
	}
	if ts > 0 {
		// Fold the accumulated contributions at the barrier.
		v := float64(a.l.G.V)
		for i := range a.rank {
			a.rank[i] = 0.15/v + 0.85*a.next[i]
			a.next[i] = 0
		}
	}
	for v := 0; v < a.l.G.V; v++ {
		w := uint32(visitCycles + a.l.G.Degree(v)*scanCycles/4 + 10)
		s.Seed(task.New(a.fnPush, ts, a.l.VAddr[v], w, uint64(v)))
	}
	return true
}

// Ranks exposes the final vector for verification.
func (a *PR) Ranks() []float64 { return a.rank }
