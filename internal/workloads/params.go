package workloads

// MediumLLParams sizes ll for quick full-geometry benchmarking: the full
// 512-unit system with roughly a quarter of the paper-sized task count.
func MediumLLParams() LLParams {
	return LLParams{Lists: 2048, AvgLen: 16, Queries: 8192, Theta: 0.99, Seed: 11}
}

// MediumHTParams sizes ht for quick full-geometry benchmarking.
func MediumHTParams() HTParams {
	return HTParams{Buckets: 8192, Keys: 65536, Queries: 12288, Theta: 0.99, Seed: 13}
}

// MediumTreeParams sizes tree for quick full-geometry benchmarking.
func MediumTreeParams() TreeParams {
	return TreeParams{Trees: 1024, NodesEach: 1023, Queries: 8192, Theta: 0.99, Seed: 17}
}

// MediumSpMVParams sizes spmv for quick full-geometry benchmarking.
func MediumSpMVParams() SpMVParams { return SpMVParams{Scale: 14, EdgeFactor: 8, Seed: 19} }

// MediumGraphParams sizes the graph kernels for quick full-geometry
// benchmarking.
func MediumGraphParams() GraphParams {
	return GraphParams{Scale: 14, EdgeFactor: 8, Seed: 23, Roots: 4, Iters: 2, MaxEpochs: 64}
}
