package workloads

import (
	"math"

	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// WCC computes connected components by bulk-synchronous min-label
// propagation: each epoch the vertices whose label dropped propagate it to
// their neighbors. (The RMAT generator emits directed edges; propagation
// follows out-edges, the reachability-closure approximation used by
// push-style NDP frameworks.) Task counts are deterministic across designs.
type WCC struct {
	p        GraphParams
	l        *GraphLayout
	labels   []int32
	changed  []int32
	dirty    []bool
	fnExpand task.FuncID
	fnScan   task.FuncID
	fnProp   task.FuncID
}

// NewWCC builds the application.
func NewWCC(p GraphParams) *WCC { return &WCC{p: p} }

// Name implements core.App.
func (a *WCC) Name() string { return "wcc" }

// Prepare implements core.App.
func (a *WCC) Prepare(s *core.System) error {
	g := RMAT(sim.NewRNG(a.p.Seed), a.p.Scale, a.p.EdgeFactor)
	a.l = NewGraphLayout(s, g)
	a.labels = make([]int32, g.V)
	a.dirty = make([]bool, g.V)
	for i := range a.labels {
		a.labels[i] = math.MaxInt32
	}
	a.fnExpand = s.Register("wcc.expand", a.expand)
	a.fnScan = s.Register("wcc.scan", a.scan)
	a.fnProp = s.Register("wcc.prop", a.prop)
	return nil
}

func (a *WCC) expand(ctx task.Ctx, t task.Task) {
	v := int(t.Args[0])
	ctx.Read(t.Addr, vertexRecordBytes)
	ctx.Compute(visitCycles)
	label := uint64(a.labels[v])
	for si := range a.l.SegAddr[v] {
		w := uint32(a.l.SegLen[v][si])*scanCycles + 10
		ctx.Enqueue(task.New(a.fnScan, t.TS, a.l.SegAddr[v][si], w,
			uint64(v), uint64(si), label))
	}
}

func (a *WCC) scan(ctx task.Ctx, t task.Task) {
	v, si, label := int(t.Args[0]), int(t.Args[1]), int32(t.Args[2])
	ctx.Read(t.Addr, a.l.SegBytes(v, si))
	ctx.Compute(uint64(a.l.SegLen[v][si]) * scanCycles)
	for _, w := range a.l.SegNeighbors(v, si) {
		if label >= a.labels[w] {
			continue
		}
		ctx.Enqueue(task.New(a.fnProp, t.TS, a.l.VAddr[w], 20, uint64(w), uint64(label)))
	}
}

func (a *WCC) prop(ctx task.Ctx, t task.Task) {
	w, label := int(t.Args[0]), int32(t.Args[1])
	if label >= a.labels[w] {
		ctx.Compute(4)
		return
	}
	a.labels[w] = label
	ctx.Write(t.Addr, 8)
	ctx.Compute(10)
	if !a.dirty[w] {
		a.dirty[w] = true
		a.changed = append(a.changed, int32(w))
	}
}

// SeedEpoch implements core.App: epoch 0 seeds every vertex with its own
// label; epoch k propagates the labels lowered in epoch k−1.
func (a *WCC) SeedEpoch(s *core.System, ts uint32) bool {
	if int(ts) >= a.p.MaxEpochs {
		return false
	}
	if ts == 0 {
		for v := 0; v < a.l.G.V; v++ {
			a.labels[v] = int32(v)
			a.changed = append(a.changed, int32(v))
		}
	}
	if len(a.changed) == 0 {
		return false
	}
	frontier := a.changed
	a.changed = nil
	for _, v := range frontier {
		a.dirty[v] = false
		w := uint32(visitCycles + a.l.G.Degree(int(v))*scanCycles/4 + 10)
		s.Seed(task.New(a.fnExpand, ts, a.l.VAddr[v], w, uint64(v)))
	}
	return true
}

// Labels exposes the final labels for verification.
func (a *WCC) Labels() []int32 { return a.labels }
