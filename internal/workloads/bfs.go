package workloads

import (
	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// GraphParams configures the four graph kernels (bfs, sssp, pr, wcc) over a
// shared RMAT generator.
type GraphParams struct {
	Scale      int
	EdgeFactor int
	Seed       uint64
	Roots      int // BFS/SSSP source count
	Iters      int // PageRank iterations
	MaxEpochs  int // safety bound for propagation kernels
}

// DefaultGraphParams sizes the graphs for the 512-unit system.
func DefaultGraphParams() GraphParams {
	return GraphParams{Scale: 16, EdgeFactor: 8, Seed: 23, Roots: 4, Iters: 3, MaxEpochs: 64}
}

// SmallGraphParams sizes the graphs for small test systems.
func SmallGraphParams() GraphParams {
	return GraphParams{Scale: 8, EdgeFactor: 4, Seed: 23, Roots: 2, Iters: 2, MaxEpochs: 64}
}

const (
	visitCycles = 60
	scanCycles  = 6 // per neighbor
	edgeWeights = 15
)

// BFS is level-synchronous breadth-first search in push style (the classic
// bulk-synchronous formulation): each epoch expands the current frontier —
// an expand task per frontier vertex reads its record and spawns per-segment
// scan tasks, which push visit tasks to the neighbors' current locations.
// Visits mark newly reached vertices, which form the next epoch's frontier.
// The task counts are deterministic across designs, so makespans compare
// like for like.
type BFS struct {
	p        GraphParams
	l        *GraphLayout
	visited  []bool
	frontier []int32
	fnExpand task.FuncID
	fnScan   task.FuncID
	fnVisit  task.FuncID
}

// NewBFS builds the application.
func NewBFS(p GraphParams) *BFS { return &BFS{p: p} }

// Name implements core.App.
func (a *BFS) Name() string { return "bfs" }

// Prepare implements core.App.
func (a *BFS) Prepare(s *core.System) error {
	g := RMAT(sim.NewRNG(a.p.Seed), a.p.Scale, a.p.EdgeFactor)
	a.l = NewGraphLayout(s, g)
	a.visited = make([]bool, g.V)
	a.fnExpand = s.Register("bfs.expand", a.expand)
	a.fnScan = s.Register("bfs.scan", a.scan)
	a.fnVisit = s.Register("bfs.visit", a.visit)
	return nil
}

func (a *BFS) expand(ctx task.Ctx, t task.Task) {
	v := int(t.Args[0])
	ctx.Read(t.Addr, vertexRecordBytes)
	ctx.Compute(visitCycles)
	for si := range a.l.SegAddr[v] {
		w := uint32(a.l.SegLen[v][si])*scanCycles + 10
		ctx.Enqueue(task.New(a.fnScan, t.TS, a.l.SegAddr[v][si], w, uint64(v), uint64(si)))
	}
}

func (a *BFS) scan(ctx task.Ctx, t task.Task) {
	v, si := int(t.Args[0]), int(t.Args[1])
	ctx.Read(t.Addr, a.l.SegBytes(v, si))
	ctx.Compute(uint64(a.l.SegLen[v][si]) * scanCycles)
	for _, w := range a.l.SegNeighbors(v, si) {
		if a.visited[w] {
			continue // already-reached vertices are filtered push-side
		}
		ctx.Enqueue(task.New(a.fnVisit, t.TS, a.l.VAddr[w], 20, uint64(w)))
	}
}

func (a *BFS) visit(ctx task.Ctx, t task.Task) {
	w := int(t.Args[0])
	if a.visited[w] {
		ctx.Compute(4)
		return
	}
	a.visited[w] = true
	ctx.Write(t.Addr, 8)
	ctx.Compute(10)
	a.frontier = append(a.frontier, int32(w))
}

// SeedEpoch implements core.App: epoch k expands the vertices reached in
// epoch k−1.
func (a *BFS) SeedEpoch(s *core.System, ts uint32) bool {
	if int(ts) >= a.p.MaxEpochs {
		return false
	}
	if ts == 0 {
		for _, r := range sources(a.l.G, a.p.Roots) {
			if !a.visited[r] {
				a.visited[r] = true
				a.frontier = append(a.frontier, int32(r))
			}
		}
	}
	if len(a.frontier) == 0 {
		return false
	}
	frontier := a.frontier
	a.frontier = nil
	for _, v := range frontier {
		w := uint32(visitCycles + a.l.G.Degree(int(v))*scanCycles/4 + 10)
		s.Seed(task.New(a.fnExpand, ts, a.l.VAddr[v], w, uint64(v)))
	}
	return true
}

// VisitedCount exposes reachability for verification.
func (a *BFS) VisitedCount() int {
	n := 0
	for _, v := range a.visited {
		if v {
			n++
		}
	}
	return n
}

// sources picks the k highest-degree vertices as search roots — they are in
// the giant component of an RMAT graph.
func sources(g *Graph, k int) []int {
	if k < 1 {
		k = 1
	}
	out := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(out) < k {
		best, bestDeg := -1, -1
		for v := 0; v < g.V; v++ {
			if !used[v] && g.Degree(v) > bestDeg {
				best, bestDeg = v, g.Degree(v)
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}
