package workloads

import (
	"testing"

	"ndpbridge/internal/sim"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(sim.NewRNG(1), 100, 0.99)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(sim.NewRNG(2), 1000, 0.99)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Item 0 should be far hotter than the median item.
	if counts[0] < counts[500]*20 {
		t.Errorf("insufficient skew: head=%d median=%d", counts[0], counts[500])
	}
	// Monotonic-ish decay: head dominates the tail half.
	head, tail := 0, 0
	for i, c := range counts {
		if i < 100 {
			head += c
		} else if i >= 500 {
			tail += c
		}
	}
	if head < tail {
		t.Errorf("head %d < tail %d", head, tail)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(sim.NewRNG(3), 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 3500 || c > 6500 {
			t.Errorf("bucket %d = %d, expected ~5000", i, c)
		}
	}
}

func TestZipfBadNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewZipf(sim.NewRNG(1), 0, 1)
}

func TestRMATShape(t *testing.T) {
	g := RMAT(sim.NewRNG(7), 10, 8)
	if g.V != 1024 {
		t.Fatalf("V = %d", g.V)
	}
	if g.E() != 1024*8 {
		t.Fatalf("E = %d", g.E())
	}
	// CSR consistency.
	if int(g.Offsets[g.V]) != g.E() {
		t.Fatal("offsets do not cover edges")
	}
	total := 0
	for v := 0; v < g.V; v++ {
		d := g.Degree(v)
		if d < 0 {
			t.Fatal("negative degree")
		}
		total += d
		for _, w := range g.Neighbors(v) {
			if w < 0 || int(w) >= g.V {
				t.Fatalf("edge target out of range: %d", w)
			}
		}
	}
	if total != g.E() {
		t.Fatalf("degree sum %d != E %d", total, g.E())
	}
}

func TestRMATPowerLaw(t *testing.T) {
	g := RMAT(sim.NewRNG(9), 12, 8)
	// A power-law graph's max degree vastly exceeds the average.
	avg := g.E() / g.V
	if g.MaxDegree() < avg*10 {
		t.Errorf("max degree %d not skewed vs avg %d", g.MaxDegree(), avg)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(sim.NewRNG(5), 8, 4)
	b := RMAT(sim.NewRNG(5), 8, 4)
	if a.E() != b.E() {
		t.Fatal("nondeterministic")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.V != 5 || g.E() != 4 {
		t.Fatalf("chain shape wrong: V=%d E=%d", g.V, g.E())
	}
	for v := 0; v < 4; v++ {
		ns := g.Neighbors(v)
		if len(ns) != 1 || int(ns[0]) != v+1 {
			t.Fatalf("vertex %d neighbors = %v", v, ns)
		}
	}
	if g.Degree(4) != 0 {
		t.Fatal("last vertex must have no out-edges")
	}
}
