package workloads

import (
	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// TreeParams configures tree traversal: a forest of balanced binary search
// trees whose nodes are scattered across the units, searched by Zipfian
// queries. Every descent hop usually crosses banks, making this the paper's
// motivating communication-heavy workload (Figure 2).
type TreeParams struct {
	Trees     int
	NodesEach int // nodes per tree; rounded to 2^d − 1
	Queries   int
	Theta     float64
	Seed      uint64
}

// DefaultTreeParams sizes the workload for the 512-unit system.
func DefaultTreeParams() TreeParams {
	return TreeParams{Trees: 2048, NodesEach: 1023, Queries: 24576, Theta: 0.99, Seed: 17}
}

// SmallTreeParams sizes the workload for small test systems.
func SmallTreeParams() TreeParams {
	return TreeParams{Trees: 4, NodesEach: 63, Queries: 96, Theta: 0.99, Seed: 17}
}

const (
	treeNodeBytes  = 64
	treeNodeCycles = 60
)

// Tree is the tree-traversal application (Algorithm 1): each node visit
// compares the query against the node's key range and pushes a child task to
// the unit storing the chosen child.
type Tree struct {
	p     TreeParams
	nodes [][]uint64 // per tree, heap-indexed node addresses
	size  int        // nodes per tree (2^d − 1)
	keys  int        // key space per tree = size
	qTree []int32
	qKey  []int32
	fn    task.FuncID
}

// NewTree builds the application.
func NewTree(p TreeParams) *Tree { return &Tree{p: p} }

// Name implements core.App.
func (a *Tree) Name() string { return "tree" }

// Prepare implements core.App.
func (a *Tree) Prepare(s *core.System) error {
	rng := sim.NewRNG(a.p.Seed)
	units := s.Units()
	placer := NewPlacer(s)
	// Round nodes to a full binary tree.
	a.size = 1
	for a.size*2-1 <= a.p.NodesEach {
		a.size = a.size * 2
	}
	a.size-- // 2^d − 1
	a.keys = a.size
	a.nodes = make([][]uint64, a.p.Trees)
	geo := s.Cfg().Geometry
	banksPerChip := geo.BanksPerChip
	perRank := geo.UnitsPerRank()
	unitOf := make([]int, a.size)
	for t := 0; t < a.p.Trees; t++ {
		addrs := make([]uint64, a.size)
		for i := range addrs {
			// Nodes scatter across banks, with the locality a real
			// allocator exhibits: children often land in the same
			// chip or rank as their parent.
			u := rng.Intn(units)
			if i > 0 {
				parent := unitOf[(i-1)/2]
				switch r := rng.Float64(); {
				case r < 0.35: // same chip
					u = parent/banksPerChip*banksPerChip + rng.Intn(banksPerChip)
				case r < 0.60: // same rank
					u = parent/perRank*perRank + rng.Intn(perRank)
				}
			}
			unitOf[i] = u
			addrs[i] = placer.Alloc(u, treeNodeBytes, treeNodeBytes)
		}
		a.nodes[t] = addrs
	}
	// Tree popularity is milder than key popularity: an index shard
	// serves many tenants.
	tz := NewZipf(rng, a.p.Trees, a.p.Theta*0.6)
	kz := NewZipf(rng, a.keys, a.p.Theta)
	a.qTree = make([]int32, a.p.Queries)
	a.qKey = make([]int32, a.p.Queries)
	for i := range a.qTree {
		a.qTree[i] = int32(tz.Next())
		a.qKey[i] = int32(kz.Next())
	}
	a.fn = s.Register("tree.visit", a.visit)
	return nil
}

// visit implements one TreeTrav step (Algorithm 1). Args: tree, heap node
// index, target key. The implicit balanced BST stores the in-order key at
// each heap position.
func (a *Tree) visit(ctx task.Ctx, t task.Task) {
	tree, node, target := int(t.Args[0]), int(t.Args[1]), int(t.Args[2])
	ctx.Read(t.Addr, treeNodeBytes)
	ctx.Compute(treeNodeCycles)
	key := inorderKey(node, a.size)
	var child int
	switch {
	case target == key:
		return // found
	case target < key:
		child = 2*node + 1
	default:
		child = 2*node + 2
	}
	if child >= a.size {
		return // not present
	}
	ctx.Enqueue(task.New(a.fn, t.TS, a.nodes[tree][child], treeNodeCycles+10,
		uint64(tree), uint64(child), uint64(target)))
}

// inorderKey returns the in-order rank of heap index node in a full binary
// tree of size nodes — the key an implicitly-balanced BST stores there.
func inorderKey(node, size int) int {
	// Record the root-to-node path, then replay it narrowing the key
	// range as a binary search would.
	lo, hi := 0, size
	i := node
	var path []int
	for i > 0 {
		path = append(path, (i-1)%2) // 0 = left child, 1 = right child
		i = (i - 1) / 2
	}
	key := (lo + hi) / 2
	for j := len(path) - 1; j >= 0; j-- {
		if path[j] == 0 {
			hi = key
		} else {
			lo = key + 1
		}
		key = (lo + hi) / 2
	}
	return key
}

// SeedEpoch implements core.App: one epoch of root-to-leaf searches.
func (a *Tree) SeedEpoch(s *core.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	for i := range a.qTree {
		tr := a.qTree[i]
		s.Seed(task.New(a.fn, 0, a.nodes[tr][0], treeNodeCycles+10,
			uint64(tr), 0, uint64(a.qKey[i])))
	}
	return true
}
