package workloads

import (
	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// HTParams configures the hash-table workload: a chained hash table whose
// buckets each live wholly in one unit (so the baseline needs no
// communication, Section VIII-A). Key insertion is Zipf-skewed, so hot
// buckets carry long overflow chains spanning many blocks, and lookups are
// Zipf-skewed too — the hot units drown in work while others idle.
type HTParams struct {
	Buckets int
	Keys    int
	Queries int
	Theta   float64
	Seed    uint64
}

// DefaultHTParams sizes the workload for the 512-unit system.
func DefaultHTParams() HTParams {
	return HTParams{Buckets: 16384, Keys: 262144, Queries: 49152, Theta: 0.99, Seed: 13}
}

// SmallHTParams sizes the workload for small test systems.
func SmallHTParams() HTParams {
	return HTParams{Buckets: 64, Keys: 512, Queries: 192, Theta: 0.99, Seed: 13}
}

const (
	htNodeBytes  = 64 // chain node: a few keys plus the next pointer
	htNodeCycles = 40
)

// HT is the hash-table lookup application: each query walks its bucket's
// overflow chain node by node; every hop is a child task bound to the next
// chain node's address, exactly like a pointer-chasing lookup on a real
// chained table.
type HT struct {
	p       HTParams
	chains  [][]uint64 // per bucket, chain node addresses
	queries []int32
	qDepth  []int32 // how deep each query walks (match position)
	fn      task.FuncID
}

// NewHT builds the application.
func NewHT(p HTParams) *HT { return &HT{p: p} }

// Name implements core.App.
func (a *HT) Name() string { return "ht" }

// Prepare implements core.App.
func (a *HT) Prepare(s *core.System) error {
	rng := sim.NewRNG(a.p.Seed)
	units := s.Units()
	placer := NewPlacer(s)

	// Insert keys with Zipf-skewed hashing: hot buckets grow long chains.
	fill := make([]int32, a.p.Buckets)
	kz := NewZipf(rng, a.p.Buckets, a.p.Theta/2)
	for i := 0; i < a.p.Keys; i++ {
		fill[kz.Next()]++
	}
	const keysPerNode = 4
	a.chains = make([][]uint64, a.p.Buckets)
	for b := 0; b < a.p.Buckets; b++ {
		nodes := (int(fill[b]) + keysPerNode - 1) / keysPerNode
		if nodes == 0 {
			nodes = 1
		}
		u := b % units
		addrs := make([]uint64, nodes)
		for i := range addrs {
			addrs[i] = placer.Alloc(u, htNodeBytes, htNodeBytes)
		}
		a.chains[b] = addrs
	}

	qz := NewZipf(rng, a.p.Buckets, a.p.Theta)
	a.queries = make([]int32, a.p.Queries)
	a.qDepth = make([]int32, a.p.Queries)
	for i := range a.queries {
		b := qz.Next()
		a.queries[i] = int32(b)
		// The probed key sits at a uniform position in the chain.
		a.qDepth[i] = int32(rng.Intn(len(a.chains[b]))) + 1
	}
	a.fn = s.Register("ht.step", a.step)
	return nil
}

// step probes one chain node. Args: bucket, node index, remaining depth.
func (a *HT) step(ctx task.Ctx, t task.Task) {
	bucket, idx, depth := int(t.Args[0]), int(t.Args[1]), int(t.Args[2])
	ctx.Read(t.Addr, htNodeBytes)
	ctx.Compute(htNodeCycles)
	if depth <= 1 {
		return // found
	}
	next := idx + 1
	if next >= len(a.chains[bucket]) {
		return // not present
	}
	ctx.Enqueue(task.New(a.fn, t.TS, a.chains[bucket][next], htNodeCycles+15,
		uint64(bucket), uint64(next), uint64(depth-1)))
}

// SeedEpoch implements core.App: one epoch of Zipfian lookups.
func (a *HT) SeedEpoch(s *core.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	for i, q := range a.queries {
		s.Seed(task.New(a.fn, 0, a.chains[q][0], htNodeCycles+15,
			uint64(q), 0, uint64(a.qDepth[i])))
	}
	return true
}
