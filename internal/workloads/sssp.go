package workloads

import (
	"math"

	"ndpbridge/internal/core"
	"ndpbridge/internal/sim"
	"ndpbridge/internal/task"
)

// SSSP is bulk-synchronous single-source shortest path (Bellman-Ford
// rounds): each epoch expands the vertices whose distance improved in the
// previous epoch. Expand tasks read the vertex and spawn per-segment scans;
// scans push relax tasks carrying tentative distances to the neighbors'
// current locations; relaxes fold the minimum into the vertex state. Task
// counts are deterministic across designs.
type SSSP struct {
	p        GraphParams
	l        *GraphLayout
	dist     []uint32
	improved []int32
	dirty    []bool
	fnExpand task.FuncID
	fnScan   task.FuncID
	fnRelax  task.FuncID
}

// NewSSSP builds the application.
func NewSSSP(p GraphParams) *SSSP { return &SSSP{p: p} }

// Name implements core.App.
func (a *SSSP) Name() string { return "sssp" }

// Prepare implements core.App.
func (a *SSSP) Prepare(s *core.System) error {
	g := RMAT(sim.NewRNG(a.p.Seed), a.p.Scale, a.p.EdgeFactor)
	a.l = NewGraphLayout(s, g)
	a.dist = make([]uint32, g.V)
	a.dirty = make([]bool, g.V)
	for i := range a.dist {
		a.dist[i] = math.MaxUint32
	}
	a.fnExpand = s.Register("sssp.expand", a.expand)
	a.fnScan = s.Register("sssp.scan", a.scan)
	a.fnRelax = s.Register("sssp.relax", a.relax)
	return nil
}

// weight derives a deterministic synthetic edge weight in [1, edgeWeights].
func weight(v int, w int32) uint64 {
	return uint64((v*31+int(w)*17)%edgeWeights) + 1
}

func (a *SSSP) expand(ctx task.Ctx, t task.Task) {
	v := int(t.Args[0])
	ctx.Read(t.Addr, vertexRecordBytes)
	ctx.Compute(visitCycles)
	d := uint64(a.dist[v])
	for si := range a.l.SegAddr[v] {
		w := uint32(a.l.SegLen[v][si])*scanCycles + 10
		ctx.Enqueue(task.New(a.fnScan, t.TS, a.l.SegAddr[v][si], w,
			uint64(v), uint64(si), d))
	}
}

func (a *SSSP) scan(ctx task.Ctx, t task.Task) {
	v, si, d := int(t.Args[0]), int(t.Args[1]), t.Args[2]
	ctx.Read(t.Addr, a.l.SegBytes(v, si))
	ctx.Compute(uint64(a.l.SegLen[v][si]) * scanCycles)
	for _, w := range a.l.SegNeighbors(v, si) {
		nd := d + weight(v, w)
		if uint32(nd) >= a.dist[w] {
			continue // push-side filter against the current distance
		}
		ctx.Enqueue(task.New(a.fnRelax, t.TS, a.l.VAddr[w], 20, uint64(w), nd))
	}
}

func (a *SSSP) relax(ctx task.Ctx, t task.Task) {
	w, nd := int(t.Args[0]), uint32(t.Args[1])
	if nd >= a.dist[w] {
		ctx.Compute(4)
		return
	}
	a.dist[w] = nd
	ctx.Write(t.Addr, 8)
	ctx.Compute(10)
	if !a.dirty[w] {
		a.dirty[w] = true
		a.improved = append(a.improved, int32(w))
	}
}

// SeedEpoch implements core.App: epoch k expands the vertices improved in
// epoch k−1 (one Bellman-Ford round per epoch).
func (a *SSSP) SeedEpoch(s *core.System, ts uint32) bool {
	if int(ts) >= a.p.MaxEpochs {
		return false
	}
	if ts == 0 {
		for _, r := range sources(a.l.G, a.p.Roots) {
			if a.dist[r] != 0 {
				a.dist[r] = 0
				a.improved = append(a.improved, int32(r))
				a.dirty[r] = true
			}
		}
	}
	if len(a.improved) == 0 {
		return false
	}
	frontier := a.improved
	a.improved = nil
	for _, v := range frontier {
		a.dirty[v] = false
		w := uint32(visitCycles + a.l.G.Degree(int(v))*scanCycles/4 + 10)
		s.Seed(task.New(a.fnExpand, ts, a.l.VAddr[v], w, uint64(v)))
	}
	return true
}

// Reached counts vertices with a finite distance, for verification.
func (a *SSSP) Reached() int {
	n := 0
	for _, d := range a.dist {
		if d != math.MaxUint32 {
			n++
		}
	}
	return n
}

// Dist exposes final distances for verification.
func (a *SSSP) Dist() []uint32 { return a.dist }
