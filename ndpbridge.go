// Package ndpbridge is a discrete-event simulator of NDPBridge (Tian et al.,
// ISCA 2024): hardware-software co-design for cross-bank communication and
// dynamic load balancing in near-DRAM-bank processing architectures.
//
// The package simulates a DRAM-bank NDP system — one wimpy core per DRAM
// bank, 512 units in the default Table I configuration — together with the
// NDPBridge hardware bridges, the task-based message-passing programming
// model, and the data-transfer-aware load balancer. Six system designs can
// be compared (Table II): host-forwarded communication (C), bridges only
// (B), bridges with work stealing (W), full NDPBridge (O), host-only
// execution (H), and RowClone-style intra-chip transfers (R).
//
// # Quick start
//
//	cfg := ndpbridge.DefaultConfig()          // Table I, design O
//	sys, err := ndpbridge.NewSystem(cfg)
//	if err != nil { ... }
//	app, err := ndpbridge.NewApp("tree")      // one of the 8 paper workloads
//	if err != nil { ... }
//	result, err := sys.Run(app)
//	fmt.Println(result)                       // makespan, wait %, energy, …
//
// # Custom applications
//
// Implement the App interface: register task handlers in Prepare and inject
// work in SeedEpoch. Handlers express computation through the task.Ctx they
// receive — Read/Write charge DRAM time, Compute charges cycles, and Enqueue
// pushes child tasks to the unit currently holding their data:
//
//	type myApp struct{ fn ndpbridge.FuncID }
//
//	func (a *myApp) Name() string { return "mine" }
//	func (a *myApp) Prepare(s *ndpbridge.System) error {
//		a.fn = s.Register("mine.step", func(ctx ndpbridge.Ctx, t ndpbridge.Task) {
//			ctx.Read(t.Addr, 64)
//			ctx.Compute(100)
//		})
//		return nil
//	}
//	func (a *myApp) SeedEpoch(s *ndpbridge.System, ts uint32) bool {
//		if ts > 0 { return false }
//		s.Seed(ndpbridge.NewTask(a.fn, 0, s.UnitBase(3)+128, 100))
//		return true
//	}
package ndpbridge

import (
	"ndpbridge/internal/config"
	"ndpbridge/internal/core"
	"ndpbridge/internal/stats"
	"ndpbridge/internal/task"
	"ndpbridge/internal/workloads"
)

// Config is the full system configuration (geometry, timing, energy, the
// load-balancing knobs, and the design selector).
type Config = config.Config

// Design selects the evaluated system variant (Table II).
type Design = config.Design

// Designs, in the paper's naming.
const (
	DesignC = config.DesignC // host-forwarded communication, no balancing
	DesignB = config.DesignB // hardware bridges, no balancing
	DesignW = config.DesignW // bridges + work stealing
	DesignO = config.DesignO // full NDPBridge
	DesignH = config.DesignH // host-only execution (non-NDP)
	DesignR = config.DesignR // RowClone intra-chip transfers
)

// Trigger selects the communication triggering policy (Section V-C).
type Trigger = config.Trigger

// Triggering policies.
const (
	TriggerDynamic    = config.TriggerDynamic
	TriggerFixedIMin  = config.TriggerFixedIMin
	TriggerFixed2IMin = config.TriggerFixed2IMin
)

// Level2Transport selects the cross-rank transport: the host runtime of the
// paper, DIMM-Link-style peer-to-peer links, or an ABC-DIMM broadcast bus.
type Level2Transport = config.Level2Transport

// Level-2 transports.
const (
	L2Host     = config.L2Host
	L2DIMMLink = config.L2DIMMLink
	L2ABCDIMM  = config.L2ABCDIMM
)

// System is one simulation instance; single-use.
type System = core.System

// App is a task-based application; see the package example.
type App = core.App

// Result holds the measurements of one run.
type Result = stats.Result

// Task is one data-centric unit of work (Section IV).
type Task = task.Task

// Ctx is the execution context handed to task handlers.
type Ctx = task.Ctx

// FuncID names a registered task handler.
type FuncID = task.FuncID

// DefaultConfig returns the Table I configuration (512 units, DDR4-2400,
// design O). Adjust fields or use the With* helpers before NewSystem.
func DefaultConfig() Config { return config.Default() }

// ParseDesign converts "C", "B", "W", "O", "H" or "R" to a Design.
func ParseDesign(s string) (Design, error) { return config.ParseDesign(s) }

// NewSystem validates cfg and builds a simulation instance.
func NewSystem(cfg Config) (*System, error) { return core.New(cfg) }

// NewTask builds a task bound to the data element at addr, with a workload
// estimate in cycles (0 = unspecified) and up to three extra arguments.
func NewTask(fn FuncID, ts uint32, addr uint64, workload uint32, args ...uint64) Task {
	return task.New(fn, ts, addr, workload, args...)
}

// AppNames lists the paper's eight evaluation workloads.
func AppNames() []string { return append([]string(nil), workloads.Names...) }

// NewApp builds one of the paper's workloads at paper-sized parameters:
// "ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", or "wcc".
func NewApp(name string) (App, error) { return workloads.New(name) }

// NewSmallApp builds a test-sized variant of a paper workload.
func NewSmallApp(name string) (App, error) { return workloads.NewSmall(name) }

// NewMediumApp builds a bench-sized variant of a paper workload: the full
// 512-unit system with roughly a quarter of the paper-sized task count.
func NewMediumApp(name string) (App, error) { return workloads.NewMedium(name) }
