module ndpbridge

go 1.22
