# Development entry points. CI runs the same commands (.github/workflows).

GO ?= go

.PHONY: build test race lint vet staticcheck ndplint ownership bench benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI lint + ndplint jobs. staticcheck is skipped with a
# notice when not installed (hermetic environments cannot fetch it).
lint: vet staticcheck ndplint

vet:
	$(GO) vet ./...

# STATICCHECK_VERSION is the single pin CI and local runs share: bump it
# here and in no other place (ci.yml reads the Makefile).
STATICCHECK_VERSION = 2025.1.1

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

ndplint:
	$(GO) run ./cmd/ndplint ./...

# ownership regenerates the committed shardcheck artifacts after a
# legitimate change to the sharding surface (new seam, new domain member).
# The cmd/ndplint golden tests gate that these stay in sync with the tree.
ownership:
	$(GO) run ./cmd/ndplint -ownership-report ./... > results/ownership.json
	$(GO) run ./cmd/ndplint -list-suppressions ./... > results/golden/ndplint-suppressions.txt

bench:
	$(GO) test -bench 'BenchmarkEngine' -benchtime 100x -benchmem -run xxx ./internal/sim/

# benchdiff reruns the small-scale campaign and diffs it against the
# committed baseline; exits non-zero on a >10% events/sec regression.
benchdiff:
	$(GO) run ./cmd/ndpbench -scale small -j 1 -benchjson /tmp/ndpbench-new.json >/dev/null
	$(GO) run ./cmd/ndpbench -compare results/bench.json /tmp/ndpbench-new.json
