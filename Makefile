# Development entry points. CI runs the same commands (.github/workflows).

GO ?= go

.PHONY: build test race lint vet staticcheck ndplint bench benchdiff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI lint + ndplint jobs. staticcheck is skipped with a
# notice when not installed (hermetic environments cannot fetch it).
lint: vet staticcheck ndplint

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

ndplint:
	$(GO) run ./cmd/ndplint ./...

bench:
	$(GO) test -bench 'BenchmarkEngine' -benchtime 100x -benchmem -run xxx ./internal/sim/

# benchdiff reruns the small-scale campaign and diffs it against the
# committed baseline; exits non-zero on a >10% events/sec regression.
benchdiff:
	$(GO) run ./cmd/ndpbench -scale small -j 1 -benchjson /tmp/ndpbench-new.json >/dev/null
	$(GO) run ./cmd/ndpbench -compare results/bench.json /tmp/ndpbench-new.json
