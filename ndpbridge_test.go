package ndpbridge_test

import (
	"strings"
	"testing"

	"ndpbridge"
)

// smallConfig shrinks the system for fast public-API tests.
func smallConfig(d ndpbridge.Design) ndpbridge.Config {
	cfg := ndpbridge.DefaultConfig().WithDesign(d)
	cfg.Geometry.Channels = 2
	cfg.Geometry.RanksPerChannel = 1
	cfg.Geometry.ChipsPerRank = 2
	cfg.Geometry.BanksPerChip = 2
	cfg.Geometry.BankBytes = 8 << 20
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := ndpbridge.NewSystem(smallConfig(ndpbridge.DesignO))
	if err != nil {
		t.Fatal(err)
	}
	app, err := ndpbridge.NewSmallApp("tree")
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan == 0 || r.TasksExecuted == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if !strings.Contains(r.String(), "tree/O") {
		t.Errorf("result string: %s", r)
	}
}

func TestPublicAPICustomApp(t *testing.T) {
	sys, err := ndpbridge.NewSystem(smallConfig(ndpbridge.DesignB))
	if err != nil {
		t.Fatal(err)
	}
	app := &countdown{n: 10}
	r, err := sys.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	if app.ran != 10 {
		t.Fatalf("ran %d tasks, want 10", app.ran)
	}
	if r.TasksExecuted != 10 {
		t.Fatalf("TasksExecuted = %d", r.TasksExecuted)
	}
}

// countdown hops a task across units until the counter drains.
type countdown struct {
	n   int
	ran int
	fn  ndpbridge.FuncID
}

func (a *countdown) Name() string { return "countdown" }

func (a *countdown) Prepare(s *ndpbridge.System) error {
	a.fn = s.Register("countdown.step", func(ctx ndpbridge.Ctx, t ndpbridge.Task) {
		a.ran++
		ctx.Read(t.Addr, 64)
		ctx.Compute(50)
		if left := t.Args[0]; left > 1 {
			next := (ctx.Unit() + 1) % s.Units()
			ctx.Enqueue(ndpbridge.NewTask(a.fn, t.TS, s.UnitBase(next)+256, 60, left-1))
		}
	})
	return nil
}

func (a *countdown) SeedEpoch(s *ndpbridge.System, ts uint32) bool {
	if ts > 0 {
		return false
	}
	s.Seed(ndpbridge.NewTask(a.fn, 0, s.UnitBase(0)+256, 60, uint64(a.n)))
	return true
}

func TestAppNames(t *testing.T) {
	names := ndpbridge.AppNames()
	if len(names) != 8 {
		t.Fatalf("AppNames = %v", names)
	}
	for _, n := range names {
		if _, err := ndpbridge.NewApp(n); err != nil {
			t.Errorf("NewApp(%s): %v", n, err)
		}
	}
	if _, err := ndpbridge.NewApp("bogus"); err == nil {
		t.Error("bogus app should fail")
	}
}

func TestParseDesign(t *testing.T) {
	d, err := ndpbridge.ParseDesign("W")
	if err != nil || d != ndpbridge.DesignW {
		t.Errorf("ParseDesign(W) = %v, %v", d, err)
	}
	if _, err := ndpbridge.ParseDesign("?"); err == nil {
		t.Error("expected error")
	}
}
